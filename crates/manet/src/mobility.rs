//! Node mobility models.
//!
//! The paper uses the random-waypoint model over a 750 m × 750 m area with the fix
//! suggested by Yoon, Liu and Noble ("Random Waypoint Considered Harmful", INFOCOM'03):
//! speeds are drawn from `[v_min, v_max]` with a strictly positive `v_min`, which avoids
//! the long-run velocity decay of the classic formulation.

use crate::geometry::{Area, Vec2};
use rand::rngs::StdRng;
use rand::Rng;
use ssmcast_dessim::SimTime;

/// A mobility process: the trajectory of one node as a function of simulated time.
///
/// # Monotonicity contract
///
/// Implementations must be *monotone*: they may only be queried with non-decreasing
/// timestamps. The discrete-event runtime honours this by construction (events are
/// dispatched in time order, and the position cache in [`crate::medium::RadioMedium`]
/// snaps queries to non-decreasing epoch starts), and the stateful built-in models
/// ([`RandomWaypoint`], [`GaussMarkov`]) rely on it: they advance internal RNG-driven
/// state as time moves forward and cannot rewind. Both enforce the contract with a
/// `debug_assert!`, so a violating caller fails loudly in debug/test builds instead of
/// silently returning a position from the wrong trajectory.
pub trait Mobility {
    /// Position of the node at time `t`. `t` must be `>=` every previously queried
    /// timestamp (see the trait-level contract).
    fn position_at(&mut self, t: SimTime) -> Vec2;
}

/// A node that never moves.
#[derive(Clone, Copy, Debug)]
pub struct Stationary {
    position: Vec2,
}

impl Stationary {
    /// Create a stationary node at `position`.
    pub fn new(position: Vec2) -> Self {
        Stationary { position }
    }
}

impl Mobility for Stationary {
    fn position_at(&mut self, _t: SimTime) -> Vec2 {
        self.position
    }
}

/// Parameters for [`RandomWaypoint`].
#[derive(Clone, Copy, Debug)]
pub struct WaypointConfig {
    /// Deployment area.
    pub area: Area,
    /// Minimum speed in m/s. Must be > 0 (Yoon/Noble fix); values ≤ 0 are raised to 0.1.
    pub min_speed: f64,
    /// Maximum speed in m/s.
    pub max_speed: f64,
    /// Pause time at each waypoint, in seconds.
    pub pause_secs: f64,
}

impl WaypointConfig {
    /// The paper's scenario: 750 m × 750 m, pause 0, speed in `[0.1, v_max]`.
    pub fn paper_default(max_speed: f64) -> Self {
        WaypointConfig {
            area: Area::square(750.0),
            min_speed: 0.1,
            max_speed: max_speed.max(0.1),
            pause_secs: 0.0,
        }
    }

    fn sanitized(mut self) -> Self {
        if self.min_speed <= 0.0 {
            self.min_speed = 0.1;
        }
        if self.max_speed < self.min_speed {
            self.max_speed = self.min_speed;
        }
        if self.pause_secs < 0.0 {
            self.pause_secs = 0.0;
        }
        self
    }
}

/// One leg of a random-waypoint trajectory.
#[derive(Clone, Copy, Debug)]
struct Leg {
    /// Where the leg starts.
    from: Vec2,
    /// Destination waypoint.
    to: Vec2,
    /// When motion starts (after any pause).
    depart: f64,
    /// When the node reaches `to`.
    arrive: f64,
    /// When the post-arrival pause ends and a new leg begins.
    next_depart: f64,
}

/// The random-waypoint mobility model with a non-zero minimum speed.
///
/// The node repeatedly picks a uniform destination in the area and a uniform speed in
/// `[min_speed, max_speed]`, travels there in a straight line, pauses, and repeats.
#[derive(Debug)]
pub struct RandomWaypoint {
    config: WaypointConfig,
    rng: StdRng,
    leg: Leg,
    /// Latest queried timestamp, for the monotonicity `debug_assert!`.
    last_query: SimTime,
}

impl RandomWaypoint {
    /// Create a trajectory starting at `start` at time zero.
    pub fn new(config: WaypointConfig, start: Vec2, rng: StdRng) -> Self {
        let config = config.sanitized();
        let mut m = RandomWaypoint {
            config,
            rng,
            leg: Leg { from: start, to: start, depart: 0.0, arrive: 0.0, next_depart: 0.0 },
            last_query: SimTime::ZERO,
        };
        m.leg = m.next_leg(start, 0.0);
        m
    }

    /// Create a trajectory whose starting point is drawn uniformly from the area.
    pub fn with_random_start(config: WaypointConfig, mut rng: StdRng) -> Self {
        let config = config.sanitized();
        let start = config.area.random_point(&mut rng);
        Self::new(config, start, rng)
    }

    fn next_leg(&mut self, from: Vec2, depart: f64) -> Leg {
        let to = self.config.area.random_point(&mut self.rng);
        let speed = if self.config.max_speed > self.config.min_speed {
            self.rng.gen_range(self.config.min_speed..=self.config.max_speed)
        } else {
            self.config.min_speed
        };
        let dist = from.distance(&to);
        let travel = if speed > 0.0 { dist / speed } else { 0.0 };
        let arrive = depart + travel;
        Leg { from, to, depart, arrive, next_depart: arrive + self.config.pause_secs }
    }

    /// The configured parameters.
    pub fn config(&self) -> &WaypointConfig {
        &self.config
    }
}

impl Mobility for RandomWaypoint {
    fn position_at(&mut self, t: SimTime) -> Vec2 {
        debug_assert!(
            t >= self.last_query,
            "RandomWaypoint queried non-monotonically: {t} after {}",
            self.last_query
        );
        self.last_query = t;
        let t = t.as_secs_f64();
        // Advance legs until `t` falls within the current one.
        while t >= self.leg.next_depart {
            let from = self.leg.to;
            let depart = self.leg.next_depart;
            self.leg = self.next_leg(from, depart);
        }
        if t <= self.leg.depart {
            self.leg.from
        } else if t >= self.leg.arrive {
            self.leg.to
        } else {
            let frac = (t - self.leg.depart) / (self.leg.arrive - self.leg.depart);
            self.leg.from.lerp(&self.leg.to, frac)
        }
    }
}

/// Parameters for [`GaussMarkov`].
#[derive(Clone, Copy, Debug)]
pub struct GaussMarkovConfig {
    /// Deployment area.
    pub area: Area,
    /// Long-run mean speed in m/s.
    pub mean_speed: f64,
    /// Hard cap on the instantaneous speed, m/s (speeds are clamped to `[0, max_speed]`).
    pub max_speed: f64,
    /// Memory parameter `alpha` in `[0, 1]`: 1 is straight-line motion, 0 is memoryless
    /// Brownian-like motion. The literature's usual default is 0.75.
    pub alpha: f64,
    /// Standard deviation of the speed innovation, m/s.
    pub speed_sigma: f64,
    /// Standard deviation of the direction innovation, radians.
    pub direction_sigma: f64,
    /// State-update period in seconds.
    pub step_secs: f64,
}

impl GaussMarkovConfig {
    /// A configuration matched to the paper's deployment: the node wanders at
    /// `mean_speed` with moderate memory, updating once per simulated second.
    pub fn with_mean_speed(area: Area, mean_speed: f64, max_speed: f64) -> Self {
        let mean = mean_speed.max(0.0);
        GaussMarkovConfig {
            area,
            mean_speed: mean,
            max_speed: max_speed.max(mean),
            alpha: 0.75,
            speed_sigma: (mean * 0.3).max(0.1),
            direction_sigma: 0.4,
            step_secs: 1.0,
        }
    }

    fn sanitized(mut self) -> Self {
        self.alpha = self.alpha.clamp(0.0, 1.0);
        self.mean_speed = self.mean_speed.max(0.0);
        self.max_speed = self.max_speed.max(self.mean_speed).max(0.0);
        self.speed_sigma = self.speed_sigma.max(0.0);
        self.direction_sigma = self.direction_sigma.max(0.0);
        if self.step_secs.is_nan() || self.step_secs <= 0.0 {
            self.step_secs = 1.0;
        }
        self
    }
}

/// Normalize an angle difference into `[-π, π)`.
fn wrap_angle(a: f64) -> f64 {
    use std::f64::consts::{PI, TAU};
    let mut a = (a + PI) % TAU;
    if a < 0.0 {
        a += TAU;
    }
    a - PI
}

/// The Gauss–Markov mobility model (Liang & Haas): speed and direction evolve as
/// first-order autoregressive processes, which avoids both the sharp turns of random
/// waypoint and the unrealistic long-run behaviour of pure random walks.
///
/// Near the deployment boundary the mean direction is steered towards the area centre
/// (the standard edge treatment), and positions are additionally clamped to the area, so
/// trajectories never escape it.
#[derive(Debug)]
pub struct GaussMarkov {
    config: GaussMarkovConfig,
    rng: StdRng,
    /// Position at the start of the current step.
    from: Vec2,
    /// Position at the end of the current step.
    to: Vec2,
    /// Step index of the current segment (`[step * step_secs, (step+1) * step_secs)`).
    step: u64,
    speed: f64,
    direction: f64,
    /// The heading the AR(1) direction process reverts to (the model's `d̄`). Drawn at
    /// start-up; retargeted towards the area centre by the boundary treatment.
    mean_direction: f64,
    /// Latest queried timestamp, for the monotonicity `debug_assert!`.
    last_query: SimTime,
}

impl GaussMarkov {
    /// Create a trajectory starting at `start` at time zero.
    pub fn new(config: GaussMarkovConfig, start: Vec2, mut rng: StdRng) -> Self {
        let config = config.sanitized();
        let direction = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut m = GaussMarkov {
            config,
            rng,
            from: start,
            to: start,
            step: 0,
            speed: config.mean_speed,
            direction,
            mean_direction: direction,
            last_query: SimTime::ZERO,
        };
        m.to = m.advance_from(start);
        m
    }

    /// Create a trajectory whose starting point is drawn uniformly from the area.
    pub fn with_random_start(config: GaussMarkovConfig, mut rng: StdRng) -> Self {
        let config = config.sanitized();
        let start = config.area.random_point(&mut rng);
        Self::new(config, start, rng)
    }

    /// The configured parameters.
    pub fn config(&self) -> &GaussMarkovConfig {
        &self.config
    }

    /// A standard normal draw (Box–Muller; one value per call is plenty here).
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Update speed/direction with the AR(1) recurrences and return the next position.
    fn advance_from(&mut self, pos: Vec2) -> Vec2 {
        let c = self.config;
        // Near an edge, retarget the *mean* heading towards the centre so the process
        // reverts away from the boundary instead of hugging it (Liang & Haas's edge
        // treatment). Away from edges the mean heading persists — it is the model's
        // `d̄`, not the current heading, which is what makes `alpha` genuine memory:
        // the direction reverts towards `d̄` rather than random-walking.
        let margin = 0.1 * c.area.width.min(c.area.height);
        let near_edge = pos.x < margin
            || pos.y < margin
            || pos.x > c.area.width - margin
            || pos.y > c.area.height - margin;
        if near_edge {
            let centre = Vec2::new(c.area.width / 2.0, c.area.height / 2.0);
            self.mean_direction = (centre.y - pos.y).atan2(centre.x - pos.x);
        }
        let root = (1.0 - c.alpha * c.alpha).max(0.0).sqrt();
        let gs = self.gaussian();
        let gd = self.gaussian();
        self.speed =
            (c.alpha * self.speed + (1.0 - c.alpha) * c.mean_speed + root * c.speed_sigma * gs)
                .clamp(0.0, c.max_speed);
        // Revert along the *shortest arc*: `alpha*d + (1-alpha)*d̄` applied to raw
        // angles turns the wrong way through ±π (e.g. when the edge retarget flips
        // atan2 from +π to −π), driving the node back into the boundary.
        self.direction += (1.0 - c.alpha) * wrap_angle(self.mean_direction - self.direction)
            + root * c.direction_sigma * gd;
        let next = Vec2::new(
            pos.x + self.speed * self.direction.cos() * c.step_secs,
            pos.y + self.speed * self.direction.sin() * c.step_secs,
        );
        if !c.area.contains(&next) {
            // Clamp to the boundary and point the process back inside on the next step.
            let clamped = c.area.clamp(&next);
            let centre = Vec2::new(c.area.width / 2.0, c.area.height / 2.0);
            self.direction = (centre.y - clamped.y).atan2(centre.x - clamped.x);
            self.mean_direction = self.direction;
            clamped
        } else {
            next
        }
    }
}

impl Mobility for GaussMarkov {
    fn position_at(&mut self, t: SimTime) -> Vec2 {
        debug_assert!(
            t >= self.last_query,
            "GaussMarkov queried non-monotonically: {t} after {}",
            self.last_query
        );
        self.last_query = t;
        let t = t.as_secs_f64();
        let step_secs = self.config.step_secs;
        // Advance whole steps until `t` falls inside the current segment.
        while t >= (self.step + 1) as f64 * step_secs {
            self.from = self.to;
            self.step += 1;
            let from = self.from;
            self.to = self.advance_from(from);
        }
        let seg_start = self.step as f64 * step_secs;
        let frac = ((t - seg_start) / step_secs).clamp(0.0, 1.0);
        self.from.lerp(&self.to, frac)
    }
}

/// Positions of `n` nodes on a centred, near-square grid inside `area` — the degenerate
/// "no mobility, regular topology" stress placement used by static scenarios.
///
/// Nodes fill row-major: `ceil(sqrt(n))` columns, cells of equal size, one node at each
/// cell centre. Every returned point lies strictly inside the area.
pub fn grid_positions(area: Area, n: usize) -> Vec<Vec2> {
    if n == 0 {
        return Vec::new();
    }
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let dx = area.width / cols as f64;
    let dy = area.height / rows as f64;
    (0..n)
        .map(|i| {
            let c = i % cols;
            let r = i / cols;
            Vec2::new((c as f64 + 0.5) * dx, (r as f64 + 0.5) * dy)
        })
        .collect()
}

/// A boxed mobility trait object, used by the runtime so heterogeneous models can coexist.
pub type BoxedMobility = Box<dyn Mobility + Send>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use ssmcast_dessim::SimDuration;

    fn cfg(vmax: f64) -> WaypointConfig {
        WaypointConfig::paper_default(vmax)
    }

    #[test]
    fn stationary_never_moves() {
        let mut m = Stationary::new(Vec2::new(10.0, 20.0));
        assert_eq!(m.position_at(SimTime::ZERO), Vec2::new(10.0, 20.0));
        assert_eq!(m.position_at(SimTime::from_secs(1000)), Vec2::new(10.0, 20.0));
    }

    #[test]
    fn waypoint_positions_stay_inside_area() {
        let mut m = RandomWaypoint::with_random_start(cfg(20.0), StdRng::seed_from_u64(3));
        let area = m.config().area;
        let mut t = SimTime::ZERO;
        for _ in 0..2000 {
            let p = m.position_at(t);
            assert!(area.contains(&p), "position {:?} escaped the area", p);
            t += SimDuration::from_millis(997);
        }
    }

    #[test]
    fn waypoint_respects_max_speed() {
        let vmax = 10.0;
        let mut m = RandomWaypoint::with_random_start(cfg(vmax), StdRng::seed_from_u64(7));
        let dt = 0.5;
        let mut prev = m.position_at(SimTime::ZERO);
        for k in 1..4000u64 {
            let t = SimTime::from_secs_f64(k as f64 * dt);
            let p = m.position_at(t);
            let speed = prev.distance(&p) / dt;
            assert!(speed <= vmax + 1e-6, "instantaneous speed {} exceeds max {}", speed, vmax);
            prev = p;
        }
    }

    #[test]
    fn waypoint_actually_moves_when_speed_positive() {
        let mut m = RandomWaypoint::with_random_start(cfg(5.0), StdRng::seed_from_u64(11));
        let p0 = m.position_at(SimTime::ZERO);
        let p1 = m.position_at(SimTime::from_secs(60));
        assert!(p0.distance(&p1) > 1.0, "node should have moved within a minute");
    }

    #[test]
    fn zero_min_speed_is_sanitized() {
        let c = WaypointConfig {
            area: Area::square(100.0),
            min_speed: 0.0,
            max_speed: 1.0,
            pause_secs: 0.0,
        };
        let m = RandomWaypoint::with_random_start(c, StdRng::seed_from_u64(1));
        assert!(m.config().min_speed > 0.0, "Yoon/Noble fix: min speed must be positive");
    }

    #[test]
    fn pause_keeps_node_at_waypoint() {
        let c = WaypointConfig {
            area: Area::square(50.0),
            min_speed: 10.0,
            max_speed: 10.0,
            pause_secs: 100.0,
        };
        let mut m = RandomWaypoint::new(c, Vec2::new(25.0, 25.0), StdRng::seed_from_u64(5));
        // After at most diag/10 ≈ 7 s the node reaches its first waypoint and then pauses
        // for 100 s; two samples inside the pause window must coincide.
        let a = m.position_at(SimTime::from_secs(20));
        let b = m.position_at(SimTime::from_secs(60));
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = RandomWaypoint::with_random_start(cfg(10.0), StdRng::seed_from_u64(42));
        let mut b = RandomWaypoint::with_random_start(cfg(10.0), StdRng::seed_from_u64(42));
        for k in 0..200u64 {
            let t = SimTime::from_secs(k * 3);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    fn gauss_markov_stays_inside_area_over_a_long_horizon() {
        for seed in 0..5u64 {
            let c = GaussMarkovConfig::with_mean_speed(Area::square(750.0), 10.0, 20.0);
            let mut m = GaussMarkov::with_random_start(c, StdRng::seed_from_u64(seed));
            let mut t = SimTime::ZERO;
            for _ in 0..5000 {
                let p = m.position_at(t);
                assert!(c.area.contains(&p), "seed {seed}: position {p:?} escaped the area");
                t += SimDuration::from_millis(731);
            }
        }
    }

    #[test]
    fn gauss_markov_moves_and_is_deterministic() {
        let c = GaussMarkovConfig::with_mean_speed(Area::square(500.0), 5.0, 10.0);
        let mut a = GaussMarkov::with_random_start(c, StdRng::seed_from_u64(9));
        let mut b = GaussMarkov::with_random_start(c, StdRng::seed_from_u64(9));
        let p0 = a.position_at(SimTime::ZERO);
        assert_eq!(p0, b.position_at(SimTime::ZERO));
        let p1 = a.position_at(SimTime::from_secs(120));
        assert_eq!(p1, b.position_at(SimTime::from_secs(120)));
        assert!(p0.distance(&p1) > 1.0, "the node should wander within two minutes");
    }

    #[test]
    fn gauss_markov_speed_is_bounded_between_updates() {
        let c = GaussMarkovConfig::with_mean_speed(Area::square(750.0), 8.0, 15.0);
        let mut m = GaussMarkov::with_random_start(c, StdRng::seed_from_u64(13));
        let dt = 0.25;
        let mut prev = m.position_at(SimTime::ZERO);
        for k in 1..4000u64 {
            let t = SimTime::from_secs_f64(k as f64 * dt);
            let p = m.position_at(t);
            let speed = prev.distance(&p) / dt;
            // Boundary clamping can only shorten a step, never lengthen it.
            assert!(speed <= c.max_speed + 1e-6, "speed {speed} exceeds cap {}", c.max_speed);
            prev = p;
        }
    }

    fn noise_free_config() -> GaussMarkovConfig {
        GaussMarkovConfig {
            area: Area::square(100_000.0),
            mean_speed: 5.0,
            max_speed: 10.0,
            alpha: 0.5,
            speed_sigma: 0.0,
            direction_sigma: 0.0,
            step_secs: 1.0,
        }
    }

    #[test]
    fn gauss_markov_direction_reverts_to_its_mean_heading() {
        // Start the heading 2 rad away from the mean heading: with zero innovation
        // noise the AR(1) process must close that gap and settle into straight-line
        // motion towards d̄. A random-walk heading (reverting to the *current*
        // direction instead of d̄) would instead keep the initial offset forever.
        let start = Vec2::new(50_000.0, 50_000.0);
        let mut m = GaussMarkov::new(noise_free_config(), start, StdRng::seed_from_u64(21));
        let target = m.mean_direction;
        m.direction = target + 2.0;
        // Re-derive the first segment from the perturbed heading.
        m.to = m.advance_from(start);
        let heading_at = |m: &mut GaussMarkov, k: u64| {
            let a = m.position_at(SimTime::from_secs(k));
            let b = m.position_at(SimTime::from_secs(k + 1));
            (b.y - a.y).atan2(b.x - a.x)
        };
        let early = heading_at(&mut m, 1);
        assert!(
            wrap_angle(early - target).abs() > 0.2,
            "the perturbation must be visible early (got {early} vs mean {target})"
        );
        let late = heading_at(&mut m, 30);
        assert!(
            wrap_angle(late - target).abs() < 1e-3,
            "heading must revert to the mean heading: late {late} vs mean {target}"
        );
    }

    #[test]
    fn gauss_markov_reverts_along_the_shortest_arc() {
        // Heading 3.0 rad, mean heading -3.0 rad: the short way is ~0.28 rad through
        // ±π, the long way is ~6 rad through 0. A naive `alpha*d + (1-alpha)*d̄`
        // interpolates the long way; the wrapped update must not.
        let start = Vec2::new(50_000.0, 50_000.0);
        let mut m = GaussMarkov::new(noise_free_config(), start, StdRng::seed_from_u64(5));
        m.direction = 3.0;
        m.mean_direction = -3.0;
        m.to = m.advance_from(start);
        for k in 1..30u64 {
            let a = m.position_at(SimTime::from_secs(k));
            let b = m.position_at(SimTime::from_secs(k + 1));
            let heading = (b.y - a.y).atan2(b.x - a.x);
            let from_mean = wrap_angle(heading - (-3.0)).abs();
            assert!(
                from_mean < 0.3 + 1e-9,
                "step {k}: heading {heading} strayed {from_mean} rad from the mean — \
                 turned the long way through zero"
            );
        }
    }

    #[test]
    fn wrap_angle_normalizes_into_half_open_pi_range() {
        use std::f64::consts::PI;
        assert!((wrap_angle(3.0 * PI) - -PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - -PI).abs() < 1e-12);
        assert_eq!(wrap_angle(0.0), 0.0);
        assert!((wrap_angle(PI + 0.1) - (-PI + 0.1)).abs() < 1e-12);
        assert!((wrap_angle(-PI - 0.1) - (PI - 0.1)).abs() < 1e-12);
    }

    #[test]
    fn monotone_queries_are_accepted_including_repeats() {
        let mut w = RandomWaypoint::with_random_start(cfg(5.0), StdRng::seed_from_u64(2));
        let c = GaussMarkovConfig::with_mean_speed(Area::square(500.0), 5.0, 10.0);
        let mut g = GaussMarkov::with_random_start(c, StdRng::seed_from_u64(2));
        for secs in [0u64, 0, 3, 3, 10, 10, 11] {
            let t = SimTime::from_secs(secs);
            let wp = w.position_at(t);
            assert_eq!(wp, w.position_at(t), "repeated query at {secs}s must be stable");
            let gp = g.position_at(t);
            assert_eq!(gp, g.position_at(t), "repeated query at {secs}s must be stable");
        }
    }

    #[test]
    #[should_panic(expected = "non-monotonically")]
    #[cfg(debug_assertions)]
    fn waypoint_rejects_time_running_backwards() {
        let mut m = RandomWaypoint::with_random_start(cfg(5.0), StdRng::seed_from_u64(4));
        m.position_at(SimTime::from_secs(10));
        m.position_at(SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "non-monotonically")]
    #[cfg(debug_assertions)]
    fn gauss_markov_rejects_time_running_backwards() {
        let c = GaussMarkovConfig::with_mean_speed(Area::square(500.0), 5.0, 10.0);
        let mut m = GaussMarkov::with_random_start(c, StdRng::seed_from_u64(4));
        m.position_at(SimTime::from_secs(10));
        m.position_at(SimTime::from_secs(9));
    }

    #[test]
    fn grid_positions_are_inside_and_distinct() {
        for n in [1usize, 2, 9, 10, 50] {
            let area = Area::square(750.0);
            let pts = grid_positions(area, n);
            assert_eq!(pts.len(), n);
            for (i, p) in pts.iter().enumerate() {
                assert!(area.contains(p), "grid point {p:?} outside the area");
                for q in &pts[i + 1..] {
                    assert!(p.distance(q) > 1.0, "grid points coincide");
                }
            }
        }
        assert!(grid_positions(Area::square(100.0), 0).is_empty());
    }
}
