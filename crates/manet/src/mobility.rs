//! Node mobility models.
//!
//! The paper uses the random-waypoint model over a 750 m × 750 m area with the fix
//! suggested by Yoon, Liu and Noble ("Random Waypoint Considered Harmful", INFOCOM'03):
//! speeds are drawn from `[v_min, v_max]` with a strictly positive `v_min`, which avoids
//! the long-run velocity decay of the classic formulation.

use crate::geometry::{Area, Vec2};
use rand::rngs::StdRng;
use rand::Rng;
use ssmcast_dessim::SimTime;

/// A mobility process: the trajectory of one node as a function of simulated time.
///
/// Implementations must be *monotone*: they may only be queried with non-decreasing
/// timestamps (the runtime always queries at the current simulation time).
pub trait Mobility {
    /// Position of the node at time `t`.
    fn position_at(&mut self, t: SimTime) -> Vec2;
}

/// A node that never moves.
#[derive(Clone, Copy, Debug)]
pub struct Stationary {
    position: Vec2,
}

impl Stationary {
    /// Create a stationary node at `position`.
    pub fn new(position: Vec2) -> Self {
        Stationary { position }
    }
}

impl Mobility for Stationary {
    fn position_at(&mut self, _t: SimTime) -> Vec2 {
        self.position
    }
}

/// Parameters for [`RandomWaypoint`].
#[derive(Clone, Copy, Debug)]
pub struct WaypointConfig {
    /// Deployment area.
    pub area: Area,
    /// Minimum speed in m/s. Must be > 0 (Yoon/Noble fix); values ≤ 0 are raised to 0.1.
    pub min_speed: f64,
    /// Maximum speed in m/s.
    pub max_speed: f64,
    /// Pause time at each waypoint, in seconds.
    pub pause_secs: f64,
}

impl WaypointConfig {
    /// The paper's scenario: 750 m × 750 m, pause 0, speed in `[0.1, v_max]`.
    pub fn paper_default(max_speed: f64) -> Self {
        WaypointConfig {
            area: Area::square(750.0),
            min_speed: 0.1,
            max_speed: max_speed.max(0.1),
            pause_secs: 0.0,
        }
    }

    fn sanitized(mut self) -> Self {
        if self.min_speed <= 0.0 {
            self.min_speed = 0.1;
        }
        if self.max_speed < self.min_speed {
            self.max_speed = self.min_speed;
        }
        if self.pause_secs < 0.0 {
            self.pause_secs = 0.0;
        }
        self
    }
}

/// One leg of a random-waypoint trajectory.
#[derive(Clone, Copy, Debug)]
struct Leg {
    /// Where the leg starts.
    from: Vec2,
    /// Destination waypoint.
    to: Vec2,
    /// When motion starts (after any pause).
    depart: f64,
    /// When the node reaches `to`.
    arrive: f64,
    /// When the post-arrival pause ends and a new leg begins.
    next_depart: f64,
}

/// The random-waypoint mobility model with a non-zero minimum speed.
///
/// The node repeatedly picks a uniform destination in the area and a uniform speed in
/// `[min_speed, max_speed]`, travels there in a straight line, pauses, and repeats.
#[derive(Debug)]
pub struct RandomWaypoint {
    config: WaypointConfig,
    rng: StdRng,
    leg: Leg,
}

impl RandomWaypoint {
    /// Create a trajectory starting at `start` at time zero.
    pub fn new(config: WaypointConfig, start: Vec2, rng: StdRng) -> Self {
        let config = config.sanitized();
        let mut m = RandomWaypoint {
            config,
            rng,
            leg: Leg { from: start, to: start, depart: 0.0, arrive: 0.0, next_depart: 0.0 },
        };
        m.leg = m.next_leg(start, 0.0);
        m
    }

    /// Create a trajectory whose starting point is drawn uniformly from the area.
    pub fn with_random_start(config: WaypointConfig, mut rng: StdRng) -> Self {
        let config = config.sanitized();
        let start = config.area.random_point(&mut rng);
        Self::new(config, start, rng)
    }

    fn next_leg(&mut self, from: Vec2, depart: f64) -> Leg {
        let to = self.config.area.random_point(&mut self.rng);
        let speed = if self.config.max_speed > self.config.min_speed {
            self.rng.gen_range(self.config.min_speed..=self.config.max_speed)
        } else {
            self.config.min_speed
        };
        let dist = from.distance(&to);
        let travel = if speed > 0.0 { dist / speed } else { 0.0 };
        let arrive = depart + travel;
        Leg { from, to, depart, arrive, next_depart: arrive + self.config.pause_secs }
    }

    /// The configured parameters.
    pub fn config(&self) -> &WaypointConfig {
        &self.config
    }
}

impl Mobility for RandomWaypoint {
    fn position_at(&mut self, t: SimTime) -> Vec2 {
        let t = t.as_secs_f64();
        // Advance legs until `t` falls within the current one.
        while t >= self.leg.next_depart {
            let from = self.leg.to;
            let depart = self.leg.next_depart;
            self.leg = self.next_leg(from, depart);
        }
        if t <= self.leg.depart {
            self.leg.from
        } else if t >= self.leg.arrive {
            self.leg.to
        } else {
            let frac = (t - self.leg.depart) / (self.leg.arrive - self.leg.depart);
            self.leg.from.lerp(&self.leg.to, frac)
        }
    }
}

/// A boxed mobility trait object, used by the runtime so heterogeneous models can coexist.
pub type BoxedMobility = Box<dyn Mobility + Send>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use ssmcast_dessim::SimDuration;

    fn cfg(vmax: f64) -> WaypointConfig {
        WaypointConfig::paper_default(vmax)
    }

    #[test]
    fn stationary_never_moves() {
        let mut m = Stationary::new(Vec2::new(10.0, 20.0));
        assert_eq!(m.position_at(SimTime::ZERO), Vec2::new(10.0, 20.0));
        assert_eq!(m.position_at(SimTime::from_secs(1000)), Vec2::new(10.0, 20.0));
    }

    #[test]
    fn waypoint_positions_stay_inside_area() {
        let mut m = RandomWaypoint::with_random_start(cfg(20.0), StdRng::seed_from_u64(3));
        let area = m.config().area;
        let mut t = SimTime::ZERO;
        for _ in 0..2000 {
            let p = m.position_at(t);
            assert!(area.contains(&p), "position {:?} escaped the area", p);
            t += SimDuration::from_millis(997);
        }
    }

    #[test]
    fn waypoint_respects_max_speed() {
        let vmax = 10.0;
        let mut m = RandomWaypoint::with_random_start(cfg(vmax), StdRng::seed_from_u64(7));
        let dt = 0.5;
        let mut prev = m.position_at(SimTime::ZERO);
        for k in 1..4000u64 {
            let t = SimTime::from_secs_f64(k as f64 * dt);
            let p = m.position_at(t);
            let speed = prev.distance(&p) / dt;
            assert!(speed <= vmax + 1e-6, "instantaneous speed {} exceeds max {}", speed, vmax);
            prev = p;
        }
    }

    #[test]
    fn waypoint_actually_moves_when_speed_positive() {
        let mut m = RandomWaypoint::with_random_start(cfg(5.0), StdRng::seed_from_u64(11));
        let p0 = m.position_at(SimTime::ZERO);
        let p1 = m.position_at(SimTime::from_secs(60));
        assert!(p0.distance(&p1) > 1.0, "node should have moved within a minute");
    }

    #[test]
    fn zero_min_speed_is_sanitized() {
        let c = WaypointConfig { area: Area::square(100.0), min_speed: 0.0, max_speed: 1.0, pause_secs: 0.0 };
        let m = RandomWaypoint::with_random_start(c, StdRng::seed_from_u64(1));
        assert!(m.config().min_speed > 0.0, "Yoon/Noble fix: min speed must be positive");
    }

    #[test]
    fn pause_keeps_node_at_waypoint() {
        let c = WaypointConfig { area: Area::square(50.0), min_speed: 10.0, max_speed: 10.0, pause_secs: 100.0 };
        let mut m = RandomWaypoint::new(c, Vec2::new(25.0, 25.0), StdRng::seed_from_u64(5));
        // After at most diag/10 ≈ 7 s the node reaches its first waypoint and then pauses
        // for 100 s; two samples inside the pause window must coincide.
        let a = m.position_at(SimTime::from_secs(20));
        let b = m.position_at(SimTime::from_secs(60));
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = RandomWaypoint::with_random_start(cfg(10.0), StdRng::seed_from_u64(42));
        let mut b = RandomWaypoint::with_random_start(cfg(10.0), StdRng::seed_from_u64(42));
        for k in 0..200u64 {
            let t = SimTime::from_secs(k * 3);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }
}
