//! Engine selection: the classic sequential event loop vs the region-sharded parallel
//! engine.
//!
//! The default configuration (`shards = 0`) runs the original single-threaded event
//! loop, byte-identical to every earlier build. Any positive shard count switches the
//! run to the sharded engine (`crate::runtime::shard`): nodes are partitioned into
//! spatial stripes, each stripe's events drain on a worker thread, and shards advance in
//! conservative lockstep windows bounded by the radio's minimum propagation delay.
//! The sharded engine is deterministic and *shard-count invariant* — the same setup
//! yields byte-identical reports at 1, 2 or 8 shards — but it is a different (documented)
//! discretisation than the sequential loop, so the two modes are not byte-comparable to
//! each other; see `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};
use ssmcast_dessim::SimDuration;

/// How the runtime drains its event queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of spatial shards (worker threads). `0` — the default — selects the
    /// classic sequential engine; any positive count selects the sharded engine, whose
    /// results are invariant in this number.
    pub shards: u32,
    /// Cadence at which the sharded engine refreshes mobility positions and rebuilds
    /// its spatial index (the sequential engine moves nodes continuously). Smaller
    /// windows track motion more faithfully; larger windows synchronise less often.
    pub sync_window: SimDuration,
    /// Attach an [`ssmcast_metrics::EngineStats`] block to the report. Off by default
    /// so reports stay byte-identical to builds that predate the block.
    pub stats: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { shards: 0, sync_window: EngineConfig::DEFAULT_SYNC_WINDOW, stats: false }
    }
}

impl EngineConfig {
    /// Default position-refresh cadence: 250 ms. At the paper's 20 m/s speed cap a node
    /// moves ≤ 5 m per window — 2 % of the 250 m default radio range.
    pub const DEFAULT_SYNC_WINDOW: SimDuration = SimDuration::from_millis(250);

    /// The sharded engine with `shards` worker threads (clamped to ≥ 1).
    pub fn sharded(shards: u32) -> Self {
        EngineConfig { shards: shards.max(1), ..EngineConfig::default() }
    }

    /// The same configuration with engine statistics attached to the report.
    pub fn with_stats(mut self) -> Self {
        self.stats = true;
        self
    }

    /// The same configuration with a different position-refresh cadence (clamped to be
    /// positive; the sequential engine ignores it).
    pub fn with_sync_window(mut self, window: SimDuration) -> Self {
        self.sync_window = window.max(SimDuration::from_nanos(1));
        self
    }

    /// True when the sharded engine is selected.
    pub fn is_parallel(&self) -> bool {
        self.shards > 0
    }

    /// Worker-thread count for the sharded engine (0 in sequential mode).
    pub fn worker_count(&self) -> usize {
        self.shards as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_sequential_engine() {
        let e = EngineConfig::default();
        assert_eq!(e.shards, 0);
        assert!(!e.is_parallel());
        assert!(!e.stats);
        assert_eq!(e.sync_window, SimDuration::from_millis(250));
    }

    #[test]
    fn sharded_clamps_to_at_least_one_worker() {
        assert_eq!(EngineConfig::sharded(0).shards, 1);
        assert_eq!(EngineConfig::sharded(8).shards, 8);
        assert!(EngineConfig::sharded(1).is_parallel());
        assert_eq!(EngineConfig::sharded(4).worker_count(), 4);
    }

    #[test]
    fn builders_compose() {
        let e =
            EngineConfig::sharded(2).with_stats().with_sync_window(SimDuration::from_millis(100));
        assert!(e.stats);
        assert_eq!(e.sync_window, SimDuration::from_millis(100));
        assert_eq!(e.shards, 2);
        let z = EngineConfig::default().with_sync_window(SimDuration::ZERO);
        assert!(z.sync_window > SimDuration::ZERO, "zero windows are clamped");
    }
}
