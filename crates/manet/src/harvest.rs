//! Energy-harvesting node model: harvest-until-threshold wake.
//!
//! A harvesting node that depletes its battery is not permanently dead: it sits dark,
//! trickle-charging from its environment (solar, vibration, RF) at a seeded per-node
//! rate, and wakes once it has banked a configured fraction of its capacity. This is
//! the harvest-until-threshold policy of capacitor-backed sensor nodes: waking at the
//! first joule would brown out immediately, so the node stays down until the bank can
//! sustain a useful burst of operation.
//!
//! The model layers on the existing battery/duty plumbing: depletion still fires the
//! lifetime accounting (`first_death_s` reports the *first* depletion even if the node
//! later revives), the wake restores energy through [`crate::battery::Battery::recharge`]
//! and restarts the node's protocol agents exactly like a fault-layer rejoin. Harvest
//! wakes are node-local — the depleting node itself banks charge and revives, touching
//! no neighbour state — so both engines run them: the sharded engine routes each wake
//! through the owning shard's queue and produces byte-identical reports at any shard
//! count (pinned in `tests/engine_equivalence.rs`).

use crate::node::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use ssmcast_dessim::{SeedSequence, SimDuration};

/// Energy-harvesting knobs. [`HarvestConfig::off`] (the default) keeps runs
/// byte-identical to pre-harvest builds: depletion stays permanent.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HarvestConfig {
    /// Master switch. Off: battery depletion is permanent node death.
    pub enabled: bool,
    /// Slowest per-node harvest rate, watts. Each node draws its rate uniformly from
    /// `[min_rate_w, max_rate_w]` using the seed sequence's dedicated `"harvest"`
    /// stream, so enabling harvesting never perturbs protocol, loss or churn draws.
    pub min_rate_w: f64,
    /// Fastest per-node harvest rate, watts.
    pub max_rate_w: f64,
    /// Fraction of the battery capacity a depleted node banks before waking
    /// (harvest-until-threshold). Clamped to `(0, 1]` at plan build.
    pub wake_fraction: f64,
}

impl HarvestConfig {
    /// Harvesting disabled — depletion is permanent (the historical behaviour).
    pub fn off() -> Self {
        HarvestConfig { enabled: false, min_rate_w: 0.0, max_rate_w: 0.0, wake_fraction: 0.25 }
    }

    /// Harvesting enabled with per-node rates uniform in `[min_rate_w, max_rate_w]`
    /// and wake at `wake_fraction` of capacity.
    pub fn on(min_rate_w: f64, max_rate_w: f64, wake_fraction: f64) -> Self {
        HarvestConfig { enabled: true, min_rate_w, max_rate_w, wake_fraction }
    }
}

impl Default for HarvestConfig {
    fn default() -> Self {
        HarvestConfig::off()
    }
}

/// Materialised per-node harvest rates plus the wake threshold, drawn once per run
/// from the seed sequence's `"harvest"` stream (mirroring `DutySchedule::from_seeds`).
#[derive(Clone, Debug)]
pub struct HarvestPlan {
    rates_w: Vec<f64>,
    wake_energy_j: f64,
}

impl HarvestPlan {
    /// Draw per-node rates for `n` nodes. Disabled configs (and unlimited batteries,
    /// which can never deplete) produce an inert plan that schedules no wakes.
    pub fn from_seeds(
        cfg: &HarvestConfig,
        n: usize,
        battery_capacity_j: f64,
        seeds: &SeedSequence,
    ) -> Self {
        if !cfg.enabled || !battery_capacity_j.is_finite() {
            return HarvestPlan { rates_w: Vec::new(), wake_energy_j: 0.0 };
        }
        let lo = cfg.min_rate_w.max(0.0);
        let hi = cfg.max_rate_w.max(lo);
        let mut rng = seeds.stream("harvest");
        let rates_w = (0..n).map(|_| lo + (hi - lo) * rng.gen::<f64>()).collect();
        let fraction = cfg.wake_fraction.clamp(f64::MIN_POSITIVE, 1.0);
        HarvestPlan { rates_w, wake_energy_j: fraction * battery_capacity_j }
    }

    /// Energy a depleted node banks before waking, joules.
    pub fn wake_energy_j(&self) -> f64 {
        self.wake_energy_j
    }

    /// `node`'s harvest rate, watts (zero for inert plans).
    pub fn rate_w(&self, node: NodeId) -> f64 {
        self.rates_w.get(node.index()).copied().unwrap_or(0.0)
    }

    /// How long `node` needs to bank its wake threshold, or `None` when it can never
    /// wake (inert plan, zero rate).
    pub fn wake_delay(&self, node: NodeId) -> Option<SimDuration> {
        let rate = self.rate_w(node);
        if rate <= 0.0 || self.wake_energy_j <= 0.0 {
            return None;
        }
        let secs = self.wake_energy_j / rate;
        secs.is_finite().then(|| SimDuration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_inert() {
        let seeds = SeedSequence::new(7);
        let plan = HarvestPlan::from_seeds(&HarvestConfig::off(), 16, 50.0, &seeds);
        assert_eq!(plan.rate_w(NodeId(3)), 0.0);
        assert!(plan.wake_delay(NodeId(3)).is_none());
    }

    #[test]
    fn unlimited_batteries_never_schedule_wakes() {
        let seeds = SeedSequence::new(7);
        let cfg = HarvestConfig::on(0.01, 0.02, 0.25);
        let plan = HarvestPlan::from_seeds(&cfg, 16, f64::INFINITY, &seeds);
        assert!(plan.wake_delay(NodeId(0)).is_none());
    }

    #[test]
    fn rates_are_seeded_bounded_and_deterministic() {
        let cfg = HarvestConfig::on(0.001, 0.004, 0.5);
        let a = HarvestPlan::from_seeds(&cfg, 64, 100.0, &SeedSequence::new(42));
        let b = HarvestPlan::from_seeds(&cfg, 64, 100.0, &SeedSequence::new(42));
        let c = HarvestPlan::from_seeds(&cfg, 64, 100.0, &SeedSequence::new(43));
        let mut varied = false;
        for i in 0..64 {
            let node = NodeId(i);
            let r = a.rate_w(node);
            assert!((0.001..=0.004).contains(&r), "rate in configured band: {r}");
            assert_eq!(r, b.rate_w(node), "same seed, same plan");
            varied |= r != c.rate_w(node);
        }
        assert!(varied, "different seeds draw different rates");
        assert_eq!(a.wake_energy_j(), 50.0);
    }

    #[test]
    fn wake_delay_is_threshold_over_rate() {
        let cfg = HarvestConfig::on(0.01, 0.01, 0.2);
        let plan = HarvestPlan::from_seeds(&cfg, 4, 50.0, &SeedSequence::new(1));
        // 0.2 × 50 J at exactly 0.01 W: 1000 s to wake.
        let delay = plan.wake_delay(NodeId(2)).expect("enabled plan wakes");
        assert!((delay.as_secs_f64() - 1000.0).abs() < 1e-6);
    }
}
