//! Fault injection: seeded fault plans and the stabilization-observer interface.
//!
//! The paper claims the SS-SPST family *self-stabilizes* — it converges back to a
//! correct multicast tree after arbitrary transient faults. This module supplies the
//! machinery to test that claim empirically instead of only by lemma:
//!
//! * a [`FaultPlanSpec`]: compact, copyable knobs a scenario carries (how many corruption
//!   bursts, crashes, blackouts, battery drains, over which window),
//! * a [`FaultPlan`]: the materialised, deterministic schedule of [`FaultEvent`]s derived
//!   from a spec plus the scenario's seed sequence (or built explicitly in tests),
//! * the [`StabilizationObserver`] trait and its [`ProbeContext`]: the hook through
//!   which a legitimacy probe (see `ssmcast-core`'s `StabilizationProbe`) watches a
//!   faulted run at configurable epochs and produces a
//!   [`ssmcast_metrics::ConvergenceStats`] block for the run report.
//!
//! Fault events flow through the same event queue as every packet and timer, so for a
//! fixed seed and plan a faulted run is exactly as reproducible as a fault-free one:
//! same seed + same plan ⇒ byte-identical [`crate::SimReport`].

use crate::node::{GroupRole, NodeId};
use crate::snapshot::TopologySnapshot;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use ssmcast_dessim::{SeedSequence, SimDuration, SimTime};
use ssmcast_metrics::ConvergenceStats;

/// One injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Transient state corruption: the runtime calls the node agent's
    /// [`crate::agent::ProtocolAgent::corrupt_state`] hook, scrambling its protocol
    /// variables (tree pointers, costs, soft state) with the node's own seeded RNG.
    Corrupt {
        /// The node whose agent state is corrupted.
        node: NodeId,
    },
    /// Node crash: the node stops transmitting, receiving and running timers. If
    /// `down_for` is finite it rejoins after that long (its agent is restarted with
    /// whatever stale state it held — a classic transient fault).
    Crash {
        /// The crashing node.
        node: NodeId,
        /// Downtime before the automatic rejoin.
        down_for: SimDuration,
    },
    /// Rejoin of a previously crashed node (scheduled internally by a
    /// [`FaultKind::Crash`]; can also be planned explicitly).
    Rejoin {
        /// The node coming back up.
        node: NodeId,
    },
    /// Link blackout: for `duration`, the radio medium delivers nothing to or from this
    /// node (deep fade / jamming). Unlike a crash the node keeps running its timers and
    /// burning transmit energy into the void.
    Blackout {
        /// The node whose links go dark.
        node: NodeId,
        /// How long the blackout lasts.
        duration: SimDuration,
    },
    /// Battery drain spike: `joules` are removed from the node's battery at once (a
    /// sensor burst, a co-located application). Only observable when the scenario runs
    /// with finite battery capacities.
    Drain {
        /// The drained node.
        node: NodeId,
        /// Energy removed, joules.
        joules: f64,
    },
}

impl FaultKind {
    /// The node this fault targets.
    pub fn node(&self) -> NodeId {
        match *self {
            FaultKind::Corrupt { node }
            | FaultKind::Crash { node, .. }
            | FaultKind::Rejoin { node }
            | FaultKind::Blackout { node, .. }
            | FaultKind::Drain { node, .. } => node,
        }
    }
}

/// A fault scheduled at an absolute simulated time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Scenario-level fault knobs: a compact, copyable description of a seeded fault
/// schedule. [`FaultPlan::from_spec`] turns it into concrete events using the scenario's
/// seed sequence, so two runs with the same scenario produce the same schedule.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanSpec {
    /// Number of corruption bursts. Each burst corrupts a seeded random subset of nodes
    /// at one instant.
    pub corruption_bursts: u32,
    /// Fraction of nodes corrupted per burst, in `[0, 1]`.
    pub corruption_fraction: f64,
    /// Number of crash(+rejoin) faults.
    pub crashes: u32,
    /// Seconds a crashed node stays down before rejoining (`f64::INFINITY` for a
    /// permanent crash).
    pub crash_downtime_s: f64,
    /// Number of link-blackout windows.
    pub blackouts: u32,
    /// Seconds each blackout lasts.
    pub blackout_duration_s: f64,
    /// Number of battery-drain spikes.
    pub battery_drains: u32,
    /// Joules removed per drain spike.
    pub drain_joules: f64,
    /// Fault times are drawn uniformly (seeded) from `[window_start_s, window_end_s]`.
    pub window_start_s: f64,
    /// End of the fault window.
    pub window_end_s: f64,
    /// If true (the default), crashes, blackouts and drains never target the multicast
    /// source; corruption may hit any node.
    pub spare_source: bool,
    /// Interval between legitimacy probes while the plan is active, seconds.
    pub probe_epoch_s: f64,
}

impl FaultPlanSpec {
    /// No faults at all — the default; runs are byte-identical to pre-fault builds.
    pub fn none() -> Self {
        FaultPlanSpec {
            corruption_bursts: 0,
            corruption_fraction: 0.0,
            crashes: 0,
            crash_downtime_s: 10.0,
            blackouts: 0,
            blackout_duration_s: 5.0,
            battery_drains: 0,
            drain_joules: 0.0,
            window_start_s: 0.0,
            window_end_s: 0.0,
            spare_source: true,
            probe_epoch_s: 0.5,
        }
    }

    /// `bursts` corruption bursts, each hitting `fraction` of the nodes, drawn from the
    /// window `[start_s, end_s]`.
    pub fn corruption(bursts: u32, fraction: f64, start_s: f64, end_s: f64) -> Self {
        FaultPlanSpec {
            corruption_bursts: bursts,
            corruption_fraction: fraction.clamp(0.0, 1.0),
            window_start_s: start_s,
            window_end_s: end_s.max(start_s),
            ..Self::none()
        }
    }

    /// A mixed stress plan: corruption bursts plus crashes and blackouts in one window.
    pub fn stress(start_s: f64, end_s: f64) -> Self {
        FaultPlanSpec {
            corruption_bursts: 2,
            corruption_fraction: 0.3,
            crashes: 2,
            crash_downtime_s: 10.0,
            blackouts: 2,
            blackout_duration_s: 5.0,
            window_start_s: start_s,
            window_end_s: end_s.max(start_s),
            ..Self::none()
        }
    }

    /// True if the spec schedules at least one fault event.
    pub fn has_faults(&self) -> bool {
        (self.corruption_bursts > 0 && self.corruption_fraction > 0.0)
            || self.crashes > 0
            || self.blackouts > 0
            || self.battery_drains > 0
    }
}

impl Default for FaultPlanSpec {
    fn default() -> Self {
        Self::none()
    }
}

/// A concrete, time-sorted schedule of fault events for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one fault at `at`; keeps the plan usable as a fluent builder in tests.
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Add one fault at `at`.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
        // Stable, so simultaneous events (a burst) keep their insertion order.
        self.events.sort_by_key(|e| e.at);
    }

    /// Append without re-sorting; [`Self::from_spec`] batches pushes and sorts once.
    fn push_unsorted(&mut self, at: SimTime, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// The scheduled events, ascending by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Materialise a spec into a deterministic schedule for a network of `n_nodes`
    /// nodes, drawing every time and target from the dedicated `"faults"` seed stream.
    /// The same `(spec, n_nodes, seeds)` triple always yields the same plan.
    pub fn from_spec(spec: &FaultPlanSpec, n_nodes: usize, seeds: &SeedSequence) -> Self {
        let mut plan = FaultPlan::new();
        if n_nodes == 0 || !spec.has_faults() {
            return plan;
        }
        let mut rng = seeds.stream("faults");
        let draw_time = |rng: &mut StdRng| {
            let lo = spec.window_start_s.max(0.0);
            let hi = spec.window_end_s.max(lo);
            let t = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
            SimTime::from_secs_f64(t)
        };
        // Nodes 1.. when sparing the source (node 0 by convention in the harness).
        let draw_node = |rng: &mut StdRng, spare: bool| {
            let lo = usize::from(spare && n_nodes > 1);
            NodeId(rng.gen_range(lo..n_nodes) as u32)
        };
        for _ in 0..spec.corruption_bursts {
            let at = draw_time(&mut rng);
            let k = ((spec.corruption_fraction * n_nodes as f64).ceil() as usize).clamp(1, n_nodes);
            // Seeded distinct subset: partial Fisher–Yates over the id range.
            let mut ids: Vec<u32> = (0..n_nodes as u32).collect();
            for i in 0..k {
                let j = rng.gen_range(i..ids.len());
                ids.swap(i, j);
            }
            let mut burst: Vec<u32> = ids[..k].to_vec();
            burst.sort_unstable();
            for id in burst {
                plan.push_unsorted(at, FaultKind::Corrupt { node: NodeId(id) });
            }
        }
        for _ in 0..spec.crashes {
            let at = draw_time(&mut rng);
            let node = draw_node(&mut rng, spec.spare_source);
            let down_for = if spec.crash_downtime_s.is_finite() {
                SimDuration::from_secs_f64(spec.crash_downtime_s.max(0.0))
            } else {
                SimDuration::MAX
            };
            plan.push_unsorted(at, FaultKind::Crash { node, down_for });
        }
        for _ in 0..spec.blackouts {
            let at = draw_time(&mut rng);
            let node = draw_node(&mut rng, spec.spare_source);
            let duration = SimDuration::from_secs_f64(spec.blackout_duration_s.max(0.0));
            plan.push_unsorted(at, FaultKind::Blackout { node, duration });
        }
        for _ in 0..spec.battery_drains {
            let at = draw_time(&mut rng);
            let node = draw_node(&mut rng, spec.spare_source);
            plan.push_unsorted(at, FaultKind::Drain { node, joules: spec.drain_joules.max(0.0) });
        }
        plan.events.sort_by_key(|e| e.at);
        plan
    }
}

/// A scrambled parent/upstream pointer for
/// [`crate::agent::ProtocolAgent::corrupt_state`] implementations: `None` a third of
/// the time, otherwise an arbitrary node id — which may well not exist in the network;
/// recovering from that too is what self-stabilization means. Shared so every
/// protocol's corruption draws from the same distribution.
pub fn scrambled_parent(rng: &mut StdRng) -> Option<NodeId> {
    match rng.gen_range(0..3u32) {
        0 => None,
        _ => Some(NodeId(u32::from(rng.gen::<u16>()))),
    }
}

/// One multicast session's state as seen by a stabilization probe: each node's
/// self-reported tree parent *in that session's protocol instance*, the session's
/// current (churn-updated) membership table, and the session's own running counters —
/// so per-session convergence accounting charges a recovery window with that session's
/// traffic and energy, not the whole network's.
pub struct SessionProbe<'a> {
    /// Per-node tree parent as reported by this session's agents
    /// ([`crate::agent::ProtocolAgent::tree_parent`], `None` for protocols without a
    /// rooted structure).
    pub parents: &'a [Option<NodeId>],
    /// Per-node role in this session at the probe instant (membership churn applied).
    pub roles: &'a [GroupRole],
    /// Control packets this session's instances transmitted so far.
    pub control_packets: u64,
    /// Data packet transmissions for this session so far.
    pub data_packets: u64,
    /// Energy attributed to this session's frames so far, joules.
    pub energy_j: f64,
}

/// The state a stabilization observer sees at a probe epoch or fault instant.
///
/// `sessions` carries one [`SessionProbe`] per concurrent multicast session (parents +
/// current roles); `alive[i]` is false while node `i` is crashed or battery-depleted,
/// and `blacked_out[i]` is true while its links are in a blackout (the node itself
/// keeps running — the distinction matters to legitimacy predicates: a dead member is
/// exempt from coverage, a blacked-out one is merely unserved). The counters are
/// network-wide running totals, so an observer can difference them across instants to
/// charge messages and energy to a recovery window.
pub struct ProbeContext<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Frozen positions + unit-disc connectivity at `now` (maximum radio range).
    pub snapshot: &'a TopologySnapshot,
    /// Per-session parents + roles, index-aligned with the run's sessions.
    pub sessions: &'a [SessionProbe<'a>],
    /// Per-node liveness (false while crashed or depleted).
    pub alive: &'a [bool],
    /// Per-node link-blackout state (true while the node's links are dark).
    pub blacked_out: &'a [bool],
    /// Control packets transmitted so far, network-wide.
    pub control_packets: u64,
    /// Data packet transmissions so far, network-wide.
    pub data_packets: u64,
    /// Energy consumed so far, network-wide, joules.
    pub energy_j: f64,
}

/// A consumer of probe epochs and fault notifications during a simulation run.
///
/// Implemented by `ssmcast-core`'s `StabilizationProbe` (legitimacy predicate +
/// convergence accounting); the runtime only defines the interface so the protocol
/// layers above can plug in richer predicates without the substrate knowing them.
pub trait StabilizationObserver {
    /// The probing cadence this observer wants. The run loop drives epochs at exactly
    /// this interval, so the cadence an observer records in its own stats and the one
    /// actually probed can never disagree. Zero is sanitised to the 1 s default.
    fn probe_epoch(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    /// Called at every probe epoch (after all events up to that instant dispatched).
    fn on_epoch(&mut self, ctx: &ProbeContext<'_>);

    /// Called immediately after a fault was applied.
    fn on_fault(&mut self, kind: &FaultKind, ctx: &ProbeContext<'_>);

    /// Called once when the run ends; returns the stats to embed in the report.
    fn finish(&mut self, end: SimTime) -> Option<ConvergenceStats>;

    /// Per-session convergence stats, index-aligned with the run's sessions. Only
    /// meaningful after [`Self::finish`]; the default (empty) means the observer does
    /// not break its measurements down per session and the runtime attaches nothing to
    /// the per-group report blocks.
    fn session_stats(&self) -> Vec<ConvergenceStats> {
        Vec::new()
    }

    /// True while `session` is inside an open recovery episode (its legitimacy
    /// predicate was observed broken and has not been seen to hold again). The runtime
    /// polls this after every epoch and fault notification to bucket control
    /// bytes-on-air into steady-state vs recovery phases for the `SilenceStats`
    /// report block. The default (always `false`) attributes everything to the
    /// steady-state phase — correct for observers that do not track episodes.
    fn session_recovering(&self, _session: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_materialises_to_an_empty_plan() {
        let spec = FaultPlanSpec::none();
        assert!(!spec.has_faults());
        let plan = FaultPlan::from_spec(&spec, 50, &SeedSequence::new(1));
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn corruption_bursts_hit_distinct_nodes_at_one_instant() {
        let spec = FaultPlanSpec::corruption(1, 0.4, 10.0, 20.0);
        let plan = FaultPlan::from_spec(&spec, 10, &SeedSequence::new(7));
        assert_eq!(plan.len(), 4, "ceil(0.4 × 10) nodes per burst");
        let t0 = plan.events()[0].at;
        let mut nodes: Vec<NodeId> = plan.events().iter().map(|e| e.kind.node()).collect();
        assert!(plan.events().iter().all(|e| e.at == t0), "a burst is simultaneous");
        assert!(t0 >= SimTime::from_secs(10) && t0 <= SimTime::from_secs(20));
        nodes.dedup();
        assert_eq!(nodes.len(), 4, "burst targets are distinct");
    }

    #[test]
    fn plans_are_deterministic_per_seed_and_differ_across_seeds() {
        let spec = FaultPlanSpec::stress(5.0, 50.0);
        let a = FaultPlan::from_spec(&spec, 30, &SeedSequence::new(42));
        let b = FaultPlan::from_spec(&spec, 30, &SeedSequence::new(42));
        assert_eq!(a, b);
        let c = FaultPlan::from_spec(&spec, 30, &SeedSequence::new(43));
        assert_ne!(a, c, "a different seed draws a different schedule");
    }

    #[test]
    fn spared_source_is_never_crashed_blacked_out_or_drained() {
        let spec = FaultPlanSpec {
            crashes: 20,
            blackouts: 20,
            battery_drains: 20,
            drain_joules: 1.0,
            window_end_s: 100.0,
            ..FaultPlanSpec::none()
        };
        let plan = FaultPlan::from_spec(&spec, 5, &SeedSequence::new(3));
        for e in plan.events() {
            assert_ne!(e.kind.node(), NodeId(0), "source must be spared: {e:?}");
        }
    }

    #[test]
    fn explicit_plans_sort_by_time() {
        let plan = FaultPlan::new()
            .with(SimTime::from_secs(9), FaultKind::Corrupt { node: NodeId(1) })
            .with(SimTime::from_secs(3), FaultKind::Rejoin { node: NodeId(2) });
        assert_eq!(plan.events()[0].at, SimTime::from_secs(3));
        assert_eq!(plan.events()[1].at, SimTime::from_secs(9));
    }

    #[test]
    fn infinite_downtime_becomes_a_permanent_crash() {
        let spec = FaultPlanSpec {
            crashes: 1,
            crash_downtime_s: f64::INFINITY,
            window_end_s: 10.0,
            ..FaultPlanSpec::none()
        };
        let plan = FaultPlan::from_spec(&spec, 4, &SeedSequence::new(9));
        match plan.events()[0].kind {
            FaultKind::Crash { down_for, .. } => assert_eq!(down_for, SimDuration::MAX),
            ref other => panic!("expected a crash, got {other:?}"),
        }
    }
}
