//! Broadcast channel occupancy and collision tracking.

use crate::node::NodeId;
use ssmcast_dessim::SimTime;

/// Tracks, per receiver, until when its radio is busy receiving.
///
/// The collision model is a simple capture-effect model: if a new reception starts while
/// an earlier one is still in progress at the same receiver, the *later* reception is
/// corrupted and lost; the earlier one survives. This is intentionally simpler than an
/// 802.11 MAC but produces the qualitative effect that matters for the paper's comparison:
/// protocols that flood (ODMRP) or beacon densely lose more frames under load.
///
/// Collisions are attributed to the multicast session whose frame was corrupted, so
/// multi-group runs can break the damage down per group; the per-session counters always
/// sum to the global one.
#[derive(Clone, Debug)]
pub struct Channel {
    busy_until: Vec<SimTime>,
    receptions: u64,
    collisions: u64,
    session_collisions: Vec<u64>,
}

impl Channel {
    /// Create a channel for `n_nodes` receivers shared by `n_sessions` multicast
    /// sessions.
    pub fn new(n_nodes: usize, n_sessions: usize) -> Self {
        Channel {
            busy_until: vec![SimTime::ZERO; n_nodes],
            receptions: 0,
            collisions: 0,
            session_collisions: vec![0; n_sessions.max(1)],
        }
    }

    /// Register a reception of one of `session`'s frames at `rx`, occupying
    /// `[start, end)`.
    ///
    /// Returns `true` if the reception is clean, `false` if it collides with an ongoing
    /// reception (in which case it should be dropped). Either way the receiver's radio is
    /// considered busy until `end` — a corrupted frame still occupies the air.
    pub fn try_receive(&mut self, session: u16, rx: NodeId, start: SimTime, end: SimTime) -> bool {
        let slot = &mut self.busy_until[rx.index()];
        let clean = *slot <= start;
        if end > *slot {
            *slot = end;
        }
        self.receptions += 1;
        if !clean {
            self.collisions += 1;
            self.session_collisions[usize::from(session)] += 1;
        }
        clean
    }

    /// Total number of receptions registered (clean or collided).
    pub fn receptions(&self) -> u64 {
        self.receptions
    }

    /// Total number of collided receptions observed.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Collided receptions of `session`'s frames. Sessions partition the global count:
    /// summing this over all sessions gives [`Self::collisions`].
    pub fn collisions_for(&self, session: usize) -> u64 {
        self.session_collisions[session]
    }

    /// True if `rx`'s radio is busy at `t`.
    pub fn is_busy(&self, rx: NodeId, t: SimTime) -> bool {
        self.busy_until[rx.index()] > t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmcast_dessim::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn non_overlapping_receptions_are_clean() {
        let mut ch = Channel::new(2, 1);
        assert!(ch.try_receive(0, NodeId(0), t(0), t(2)));
        assert!(ch.try_receive(0, NodeId(0), t(2), t(4)), "back-to-back frames do not collide");
        assert_eq!(ch.collisions(), 0);
        assert_eq!(ch.receptions(), 2);
    }

    #[test]
    fn overlapping_reception_is_lost() {
        let mut ch = Channel::new(2, 1);
        assert!(ch.try_receive(0, NodeId(0), t(0), t(5)));
        assert!(!ch.try_receive(0, NodeId(0), t(3), t(8)), "later overlapping frame is corrupted");
        assert_eq!(ch.collisions(), 1);
        // Busy window extends to the end of the corrupted frame.
        assert!(ch.is_busy(NodeId(0), t(7)));
        assert!(!ch.is_busy(NodeId(0), t(9)));
    }

    #[test]
    fn receivers_are_independent() {
        let mut ch = Channel::new(3, 1);
        assert!(ch.try_receive(0, NodeId(0), t(0), t(5)));
        assert!(ch.try_receive(0, NodeId(1), t(1), t(6)), "different receiver, no collision");
        assert!(ch.try_receive(0, NodeId(2), t(2), t(7)));
        assert_eq!(ch.collisions(), 0);
    }

    #[test]
    fn is_busy_is_half_open_on_the_reception_window() {
        let mut ch = Channel::new(1, 1);
        assert!(!ch.is_busy(NodeId(0), t(0)), "an untouched receiver is idle");
        ch.try_receive(0, NodeId(0), t(2), t(5));
        // `[start, end)`: busy strictly before `end`, idle exactly at `end`.
        assert!(ch.is_busy(NodeId(0), t(2)));
        assert!(ch.is_busy(NodeId(0), t(4)));
        assert!(!ch.is_busy(NodeId(0), t(5)));
    }

    #[test]
    fn zero_duration_frames_collide_but_never_occupy_the_air() {
        let mut ch = Channel::new(1, 1);
        // A zero-duration frame on an idle channel is clean and leaves no busy window.
        assert!(ch.try_receive(0, NodeId(0), t(1), t(1)));
        assert!(!ch.is_busy(NodeId(0), t(1)));
        // Two of them back to back at the same instant are both clean.
        assert!(ch.try_receive(0, NodeId(0), t(1), t(1)));
        assert_eq!(ch.collisions(), 0);
        // But a zero-duration frame inside someone else's reception still collides —
        // and must not shrink the existing busy window.
        assert!(ch.try_receive(0, NodeId(0), t(2), t(6)));
        assert!(!ch.try_receive(0, NodeId(0), t(4), t(4)));
        assert_eq!(ch.collisions(), 1);
        assert!(ch.is_busy(NodeId(0), t(5)));
        assert_eq!(ch.receptions(), 4);
    }

    #[test]
    fn collisions_are_attributed_to_the_corrupted_frames_session() {
        let mut ch = Channel::new(2, 3);
        // Session 0's frame occupies the receiver; session 2's frame collides into it.
        assert!(ch.try_receive(0, NodeId(0), t(0), t(5)));
        assert!(!ch.try_receive(2, NodeId(0), t(3), t(8)));
        // Another overlap, this time corrupting a session-0 frame at node 1.
        assert!(ch.try_receive(1, NodeId(1), t(0), t(5)));
        assert!(!ch.try_receive(0, NodeId(1), t(1), t(2)));
        assert_eq!(ch.collisions_for(0), 1);
        assert_eq!(ch.collisions_for(1), 0);
        assert_eq!(ch.collisions_for(2), 1);
        let total: u64 = (0..3).map(|s| ch.collisions_for(s)).sum();
        assert_eq!(total, ch.collisions(), "per-session counts partition the global one");
    }
}
