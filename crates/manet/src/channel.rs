//! Broadcast channel occupancy and collision tracking.

use crate::node::NodeId;
use ssmcast_dessim::SimTime;

/// Tracks, per receiver, until when its radio is busy receiving.
///
/// The collision model is a simple capture-effect model: if a new reception starts while
/// an earlier one is still in progress at the same receiver, the *later* reception is
/// corrupted and lost; the earlier one survives. This is intentionally simpler than an
/// 802.11 MAC but produces the qualitative effect that matters for the paper's comparison:
/// protocols that flood (ODMRP) or beacon densely lose more frames under load.
#[derive(Clone, Debug)]
pub struct Channel {
    busy_until: Vec<SimTime>,
    collisions: u64,
}

impl Channel {
    /// Create a channel for `n_nodes` receivers.
    pub fn new(n_nodes: usize) -> Self {
        Channel { busy_until: vec![SimTime::ZERO; n_nodes], collisions: 0 }
    }

    /// Register a reception at `rx` occupying `[start, end)`.
    ///
    /// Returns `true` if the reception is clean, `false` if it collides with an ongoing
    /// reception (in which case it should be dropped). Either way the receiver's radio is
    /// considered busy until `end` — a corrupted frame still occupies the air.
    pub fn try_receive(&mut self, rx: NodeId, start: SimTime, end: SimTime) -> bool {
        let slot = &mut self.busy_until[rx.index()];
        let clean = *slot <= start;
        if end > *slot {
            *slot = end;
        }
        if !clean {
            self.collisions += 1;
        }
        clean
    }

    /// Total number of collided receptions observed.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// True if `rx`'s radio is busy at `t`.
    pub fn is_busy(&self, rx: NodeId, t: SimTime) -> bool {
        self.busy_until[rx.index()] > t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmcast_dessim::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn non_overlapping_receptions_are_clean() {
        let mut ch = Channel::new(2);
        assert!(ch.try_receive(NodeId(0), t(0), t(2)));
        assert!(ch.try_receive(NodeId(0), t(2), t(4)), "back-to-back frames do not collide");
        assert_eq!(ch.collisions(), 0);
    }

    #[test]
    fn overlapping_reception_is_lost() {
        let mut ch = Channel::new(2);
        assert!(ch.try_receive(NodeId(0), t(0), t(5)));
        assert!(!ch.try_receive(NodeId(0), t(3), t(8)), "later overlapping frame is corrupted");
        assert_eq!(ch.collisions(), 1);
        // Busy window extends to the end of the corrupted frame.
        assert!(ch.is_busy(NodeId(0), t(7)));
        assert!(!ch.is_busy(NodeId(0), t(9)));
    }

    #[test]
    fn receivers_are_independent() {
        let mut ch = Channel::new(3);
        assert!(ch.try_receive(NodeId(0), t(0), t(5)));
        assert!(ch.try_receive(NodeId(1), t(1), t(6)), "different receiver, no collision");
        assert!(ch.try_receive(NodeId(2), t(2), t(7)));
        assert_eq!(ch.collisions(), 0);
    }
}
