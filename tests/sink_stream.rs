//! Streaming-sink behaviour under out-of-order cell completion: the experiment engine's
//! thread pool finishes cells in arbitrary order, but sinks must observe them in grid
//! order (CSV/JSONL rows sorted), and a failing sink inside a tee must surface its
//! error without starving the other sinks.

use ssmcast::scenario::{
    CellInfo, CsvStreamSink, Experiment, JsonLinesSink, MemorySink, ProtocolKind, RunSink,
    Scenario, SweepCell, TeeSink,
};

fn small_base() -> Scenario {
    let mut s = Scenario::quick_test();
    s.duration_s = 5.0;
    s.n_nodes = 12;
    s.group_size = 5;
    s
}

/// A sweep whose first column simulates ~10× longer than the rest: with several worker
/// threads, later cells complete while cell 0 is still running, so the collector must
/// buffer the out-of-order window and release it in grid order.
fn skewed_experiment() -> Experiment {
    Experiment::new(small_base())
        .protocol_kinds(&[ProtocolKind::Flooding])
        .sweep_with(vec![50.0, 5.0, 5.0, 5.0, 5.0, 5.0], |s, x| s.duration_s = x)
        .threads(4)
}

#[test]
fn csv_rows_stay_in_grid_order_under_out_of_order_completion() {
    let mut csv = CsvStreamSink::new(Vec::new());
    skewed_experiment().run_with_sink(&mut csv);
    assert!(csv.error().is_none());
    let text = String::from_utf8(csv.into_inner()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 7, "header + six columns: {text}");
    let xs: Vec<f64> =
        lines[1..].iter().map(|l| l.split(',').next().unwrap().parse().unwrap()).collect();
    assert_eq!(xs, vec![50.0, 5.0, 5.0, 5.0, 5.0, 5.0], "rows must follow grid order");
}

#[test]
fn jsonl_cells_stay_in_grid_order_under_out_of_order_completion() {
    let mut jsonl = JsonLinesSink::new(Vec::new());
    skewed_experiment().run_with_sink(&mut jsonl);
    assert!(jsonl.error().is_none());
    let text = String::from_utf8(jsonl.into_inner()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6);
    assert!(lines[0].contains("\"x\":50"), "slowest cell still emitted first: {}", lines[0]);
    for line in &lines[1..] {
        assert!(line.contains("\"x\":5"), "{line}");
    }
    // Every line is one standalone JSON object.
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'));
    }
}

#[test]
fn ordered_delivery_holds_for_every_thread_count() {
    struct Order(Vec<usize>);
    impl RunSink for Order {
        fn on_cell(&mut self, info: &CellInfo, _cell: &SweepCell) {
            self.0.push(info.cell_index);
        }
    }
    for threads in [1, 2, 8] {
        let mut sink = Order(Vec::new());
        Experiment::new(small_base())
            .protocol_kinds(&[ProtocolKind::Flooding, ProtocolKind::Odmrp])
            .sweep_with(vec![30.0, 5.0, 5.0], |s, x| s.duration_s = x)
            .threads(threads)
            .run_with_sink(&mut sink);
        assert_eq!(sink.0, (0..6).collect::<Vec<_>>(), "threads={threads}");
    }
}

/// A writer that fails permanently after accepting `budget` complete lines.
struct FailAfter {
    inner: Vec<u8>,
    budget: usize,
}

impl std::io::Write for FailAfter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.inner.iter().filter(|&&b| b == b'\n').count() >= self.budget {
            return Err(std::io::Error::new(std::io::ErrorKind::StorageFull, "disk full"));
        }
        self.inner.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn tee_keeps_feeding_healthy_sinks_after_one_member_fails() {
    let mut memory = MemorySink::new();
    let mut csv = CsvStreamSink::new(FailAfter { inner: Vec::new(), budget: 2 });
    let mut jsonl = JsonLinesSink::new(Vec::new());
    {
        let mut tee = TeeSink::new(vec![&mut memory, &mut csv, &mut jsonl]);
        skewed_experiment().run_with_sink(&mut tee);
    }
    // The CSV ran out of disk after header + one row; the error must surface...
    assert!(csv.error().is_some(), "the failed member's error is preserved");
    let csv_text = String::from_utf8(csv.into_inner().inner).unwrap();
    assert_eq!(csv_text.lines().count(), 2, "header + the one row that fit");
    // ...while the other members of the tee keep receiving every cell.
    assert_eq!(memory.cells().len(), 6, "memory sink saw the whole grid");
    let jsonl_text = String::from_utf8(jsonl.into_inner()).unwrap();
    assert_eq!(jsonl_text.lines().count(), 6, "JSONL sink saw the whole grid");
}

#[test]
fn tee_forwards_finish_to_every_member_in_order() {
    #[derive(Default)]
    struct Flagged {
        cells: usize,
        finished: bool,
    }
    impl RunSink for Flagged {
        fn on_cell(&mut self, _info: &CellInfo, _cell: &SweepCell) {
            assert!(!self.finished, "no cell may arrive after finish");
            self.cells += 1;
        }
        fn finish(&mut self) {
            self.finished = true;
        }
    }
    let mut a = Flagged::default();
    let mut b = Flagged::default();
    {
        let mut tee = TeeSink::new(vec![&mut a, &mut b]);
        Experiment::new(small_base())
            .protocol_kinds(&[ProtocolKind::Flooding])
            .run_with_sink(&mut tee);
    }
    assert!(a.finished && b.finished);
    assert_eq!(a.cells, 1);
    assert_eq!(b.cells, 1);
}
