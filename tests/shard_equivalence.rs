//! Shard-count invariance: the region-parallel engine must produce **byte-identical**
//! serialized reports for every shard count — `shards ∈ {1, 2, 8}` are all the same
//! run, merely partitioned differently. (The sharded engine is deliberately *not*
//! byte-compared against the sequential engine: it quantizes position refreshes to the
//! synchronization window and draws channel loss from per-sender streams — see
//! EXPERIMENTS.md, "Sharded engine".)
//!
//! Engine stats stay **off** here: `events_per_sec` is wall-clock derived and would
//! break byte equality between otherwise identical runs.

use proptest::prelude::*;
use ssmcast::core::MetricKind;
use ssmcast::manet::{FaultPlanSpec, MacConfig};
use ssmcast::scenario::{base_scenario_for, run_protocol, FigureId, ProtocolKind, Scenario};

const SHARD_COUNTS: [u32; 3] = [1, 2, 8];

/// Serialize the scenario's report on the sharded engine with `shards` workers.
fn rendered(scenario: &Scenario, shards: u32, kind: ProtocolKind) -> String {
    let sharded = (*scenario).with_shards(shards);
    let report = run_protocol(&sharded, kind.to_protocol().as_ref());
    serde_json::to_string(&report).expect("reports serialize")
}

/// Assert the serialized report is invariant across `SHARD_COUNTS`.
fn assert_shard_invariant(scenario: &Scenario, kind: ProtocolKind, label: &str) {
    let baseline = rendered(scenario, SHARD_COUNTS[0], kind);
    for &k in &SHARD_COUNTS[1..] {
        let other = rendered(scenario, k, kind);
        assert_eq!(
            baseline, other,
            "{label}: report at {k} shards diverged from {} shards",
            SHARD_COUNTS[0]
        );
    }
}

/// A short harness-friendly run: every figure preset's physics, compressed in time so
/// the full matrix stays fast.
fn shorten(mut s: Scenario) -> Scenario {
    s.duration_s = 20.0;
    s.warmup_s = s.warmup_s.min(2.0);
    s
}

#[test]
fn every_figure_preset_is_shard_count_invariant() {
    for fig in FigureId::ALL {
        let spec = fig.spec();
        let mut s = shorten(base_scenario_for(&spec));
        // Exercise the preset at its first swept x-value, under its first protocol —
        // one cell of the figure grid, with that figure's fixed parameters.
        spec.swept.apply(&mut s, spec.xs[0]);
        let kind = spec.protocols[0];
        assert_shard_invariant(&s, kind, spec.title);
    }
}

#[test]
fn every_mac_policy_is_shard_count_invariant() {
    for (name, mac) in [
        ("random-jitter", MacConfig::default().with_stats()),
        ("csma", MacConfig::csma()),
        ("ss-tdma", MacConfig::ss_tdma()),
    ] {
        let s = shorten(Scenario::quick_test()).with_mac(mac);
        assert_shard_invariant(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware), name);
    }
}

#[test]
fn fault_plans_are_shard_count_invariant() {
    // All four fault kinds at once, probed: corruption bursts, crashes (+rejoins),
    // link blackouts and battery-drain spikes on finite batteries.
    let mut faults = FaultPlanSpec::none();
    faults.corruption_bursts = 2;
    faults.corruption_fraction = 0.3;
    faults.crashes = 2;
    faults.crash_downtime_s = 3.0;
    faults.blackouts = 2;
    faults.blackout_duration_s = 2.0;
    faults.battery_drains = 2;
    faults.drain_joules = 5.0;
    faults.window_start_s = 3.0;
    faults.window_end_s = 15.0;
    let s = shorten(Scenario::quick_test()).with_faults(faults).with_battery_capacity(50.0);
    for kind in [ProtocolKind::Flooding, ProtocolKind::SsSpst(MetricKind::EnergyAware)] {
        assert_shard_invariant(&s, kind, "fault plan");
    }
}

#[test]
fn churning_multi_group_runs_are_shard_count_invariant() {
    let s = shorten(Scenario::quick_test()).with_groups(3).with_churn_rate(0.4);
    assert_shard_invariant(&s, ProtocolKind::Odmrp, "multi-group churn");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Different seeds draw different topologies/mobility; each must still be
    /// shard-count invariant. Byte-identical serialized reports imply identical
    /// per-session traces (delivery counts, energy, delay, per-group blocks).
    #[test]
    fn random_topologies_yield_identical_traces_across_shard_counts(
        seed in 0u64..1_000_000,
        n_nodes in 20usize..=45,
    ) {
        let mut s = shorten(Scenario::quick_test());
        s.duration_s = 15.0;
        s.seed = seed;
        s.n_nodes = n_nodes;
        assert_shard_invariant(&s, ProtocolKind::Flooding, "random topology");
    }
}

#[test]
fn sequential_and_sharded_default_reports_omit_engine_stats() {
    let s = shorten(Scenario::quick_test());
    let seq =
        serde_json::to_string(&run_protocol(&s, ProtocolKind::Flooding.to_protocol().as_ref()))
            .expect("reports serialize");
    assert!(!seq.contains("\"engine\""), "stats-off sequential report grew an engine block");
    let sharded = rendered(&s, 2, ProtocolKind::Flooding);
    assert!(!sharded.contains("\"engine\""), "stats-off sharded report grew an engine block");
}

#[test]
fn engine_stats_block_reports_the_shard_layout() {
    let s = shorten(Scenario::quick_test());
    let sharded = s.with_shards(4);
    let sharded = Scenario { engine: sharded.engine.with_stats(), ..sharded };
    let report = run_protocol(&sharded, ProtocolKind::Flooding.to_protocol().as_ref());
    let engine = report.engine.expect("stats-on run must attach an engine block");
    assert_eq!(engine.shards, 4);
    assert_eq!(engine.shard_event_counts.len(), 4);
    assert_eq!(engine.events_processed, engine.shard_event_counts.iter().sum::<u64>());
    assert!(engine.events_processed > 0);
    assert!(engine.sync_rounds > 0);
    assert!(engine.peak_queue_depth > 0);
    assert!(engine.imbalance_ratio >= 1.0);

    let seq = Scenario { engine: s.engine.with_stats(), ..s };
    let report = run_protocol(&seq, ProtocolKind::Flooding.to_protocol().as_ref());
    let engine = report.engine.expect("stats-on sequential run must attach an engine block");
    assert_eq!(engine.shards, 0);
    assert_eq!(engine.shard_event_counts.len(), 1);
    assert_eq!(engine.sync_rounds, 0);
    assert!(engine.events_processed > 0);
}
