//! Property tests for the minimum-energy baselines' two load-bearing primitives:
//!
//! * `DutySchedule::next_awake_at` — the query DCA-Forward uses to defer a
//!   transmission into a receiver's wake window. Its contract: the returned instant is
//!   `>= t`, the node is awake at it, and **no awake time exists strictly between**
//!   (cross-checked exactly via `awake_between`, which integrates scheduled-awake time
//!   over the interval).
//! * `min_energy_tree` — the BIP greedy behind MEM-Tree. Its contract: the broadcast
//!   tree never costs more transmit power than paying each tree link as a unicast, and
//!   it is a source-rooted, acyclic cover of exactly the source's connected component.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssmcast::core::{min_energy_tree, tree_tx_power, MetricParams, MulticastTopology};
use ssmcast::dessim::{SimDuration, SimTime};
use ssmcast::manet::{DutySchedule, NodeId, TopologySnapshot, Vec2};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `next_awake_at` returns the *earliest* awake instant ≥ t: awake at the result,
    /// nothing awake strictly before it, identity when already awake.
    #[test]
    fn next_awake_at_is_the_earliest_awake_instant(
        period_ms in 1u64..5_000,
        awake_frac in 0.01f64..1.0,
        phase_ns in 0u64..5_000_000_000,
        t_ns in 0u64..600_000_000_000,
    ) {
        let period_ns = period_ms * 1_000_000;
        let awake_ns = ((period_ns as f64 * awake_frac) as u64).max(1);
        let duty = DutySchedule::with_phases(period_ns, awake_ns, vec![phase_ns]);
        let node = NodeId(0);
        let t = SimTime::from_nanos(t_ns);
        let w = duty.next_awake_at(node, t);
        prop_assert!(w >= t, "result must not precede the query instant");
        prop_assert!(duty.is_awake(node, w), "result must be an awake instant");
        // Identity exactly when already awake …
        prop_assert_eq!(w == t, duty.is_awake(node, t));
        // … and zero scheduled-awake time in [t, w): no earlier awake instant exists.
        prop_assert_eq!(
            duty.awake_between(node, t, w),
            SimDuration::ZERO,
            "an awake instant exists strictly before the returned one"
        );
        // The result is never more than one full period away.
        prop_assert!(w.saturating_since(t).as_nanos() < period_ns);
    }

    /// On random geometric graphs, the BIP tree's broadcast power (each transmitting
    /// node priced once, at its farthest child) never exceeds the per-link unicast sum
    /// over the same edges, and the tree spans exactly the source's connected
    /// component, acyclically, rooted at the source.
    #[test]
    fn bip_tree_is_cheap_rooted_and_spans_the_source_component(
        seed in 0u64..10_000,
        n in 2usize..24,
        range in 120.0f64..400.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let positions: Vec<Vec2> = (0..n)
            .map(|_| Vec2::new(rng.gen::<f64>() * 600.0, rng.gen::<f64>() * 600.0))
            .collect();
        let snap = TopologySnapshot::new(positions, range);
        let members: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let topo = MulticastTopology::from_snapshot(&snap, NodeId(0), members);
        let params = MetricParams::default();
        let tree = min_energy_tree(&topo, &params);

        // Broadcast advantage: one priced transmission per transmitting node is never
        // dearer than paying every tree link individually.
        let unicast: f64 =
            tree.edges(&topo).filter_map(|(_, _, d)| d).map(|d| params.tx(d)).sum();
        let broadcast = tree_tx_power(&tree, &topo, &params);
        prop_assert!(
            broadcast <= unicast + 1e-9,
            "broadcast power {broadcast} exceeds unicast sum {unicast}"
        );

        // Reachability from the source over the topology (BFS) …
        let mut reachable = vec![false; n];
        reachable[0] = true;
        let mut frontier = vec![NodeId(0)];
        while let Some(u) = frontier.pop() {
            for &(v, _) in topo.neighbors(u) {
                if !reachable[v.index()] {
                    reachable[v.index()] = true;
                    frontier.push(v);
                }
            }
        }
        // … must match tree coverage exactly: every reachable non-source node has a
        // parent, every unreachable node stays parentless.
        for (i, &r) in reachable.iter().enumerate().skip(1) {
            let v = NodeId(i as u32);
            prop_assert_eq!(
                tree.parent(v).is_some(),
                r,
                "node {} coverage disagrees with reachability", i
            );
        }
        prop_assert!(tree.parent(NodeId(0)).is_none(), "the source has no parent");

        // Source-rooted and acyclic: every parent chain reaches the source within n
        // hops, and every tree edge is a real (current) adjacency.
        for (i, &r) in reachable.iter().enumerate().skip(1) {
            let mut v = NodeId(i as u32);
            let mut hops = 0;
            while let Some(p) = tree.parent(v) {
                prop_assert!(
                    topo.distance(p, v).is_some(),
                    "tree edge {p:?} -> {v:?} is not an adjacency"
                );
                v = p;
                hops += 1;
                prop_assert!(hops <= n, "parent chain from node {} cycles", i);
            }
            if r {
                prop_assert_eq!(v, NodeId(0), "chain from node {} must end at the source", i);
            }
        }
    }
}
