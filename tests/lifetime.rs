//! Energy-lifecycle acceptance suite: the network-lifetime workload must differentiate
//! protocols (SS-SPST-E outlives SS-SPST outlives flooding on the `FigLifetime`
//! preset), battery death must be permanent and total (dead nodes never transmit,
//! receive, or appear in probe alive-sets), energy must be conserved across sessions
//! even with duty-cycled radios, continuous drain and TX power control, and every
//! lifecycle mechanism must be deterministic per seed.

use proptest::prelude::*;
use ssmcast::core::MetricKind;
use ssmcast::dessim::{SeedSequence, SimDuration, SimTime};
use ssmcast::manet::{
    BoxedMobility, DataTag, Disposition, DutyCycleConfig, DutySchedule, EnergyModel, FaultPlan,
    GroupRole, MediumConfig, NetworkSim, NodeCtx, NodeId, Packet, ProtocolAgent, RadioConfig,
    SimSetup, Stationary, TrafficConfig, Vec2,
};
use ssmcast::scenario::{
    run_protocol, run_single_cell, FigureId, Metric, MobilityKind, ProtocolKind, ProtocolRegistry,
    Scenario,
};
use std::sync::{Arc, Mutex};

/// The acceptance criterion of the lifetime workload: on the `FigLifetime` preset the
/// energy-aware tree keeps its first node alive at least as long as the hop tree, which
/// outlives blind flooding — strictly, at capacities small enough that everyone loses
/// somebody.
#[test]
fn lifetime_sweep_differentiates_the_protocols() {
    for capacity in [5.0, 10.0, 20.0] {
        let ttfd = |kind: ProtocolKind| {
            let report = run_single_cell(FigureId::FigLifetime, capacity, kind, 0.2);
            let lifetime = report.lifetime.as_ref().expect("finite batteries track lifetime");
            assert_eq!(
                Metric::TimeToFirstDeathS.extract(&report),
                lifetime.time_to_first_death_s(report.duration_s)
            );
            lifetime.time_to_first_death_s(report.duration_s)
        };
        let flooding = ttfd(ProtocolKind::Flooding);
        let hop = ttfd(ProtocolKind::SsSpst(MetricKind::Hop));
        let energy_aware = ttfd(ProtocolKind::SsSpst(MetricKind::EnergyAware));
        assert!(
            energy_aware >= hop && hop >= flooding,
            "cap {capacity} J: expected SS-SPST-E ({energy_aware}) >= SS-SPST ({hop}) >= \
             Flooding ({flooding})"
        );
        if capacity <= 10.0 {
            assert!(
                energy_aware > flooding,
                "cap {capacity} J: the energy-aware tree must strictly outlive flooding"
            );
        }
    }
}

#[test]
fn lifetime_block_carries_curves_and_residuals() {
    let report = run_single_cell(FigureId::FigLifetime, 10.0, ProtocolKind::Flooding, 0.2);
    let lifetime = report.lifetime.as_ref().expect("lifetime block");
    assert!(lifetime.deaths > 0, "a 10 J flooding network loses nodes");
    assert_eq!(lifetime.alive_final + lifetime.deaths, 50);
    assert_eq!(lifetime.first_death_s.map(|s| s > 0.0), Some(true));
    // Curves: one sample per epoch across the run, alive counts monotone nonincreasing
    // (battery death is permanent and this preset injects no crash/rejoin faults).
    assert!(lifetime.alive_curve.len() >= 30, "one sample per second across a 36 s run");
    assert_eq!(lifetime.alive_curve.len(), lifetime.delivery_ratio_curve.len());
    assert!(lifetime.alive_curve.windows(2).all(|w| w[1] <= w[0]), "no battery resurrections");
    assert_eq!(*lifetime.alive_curve.last().unwrap(), lifetime.alive_final);
    assert!(lifetime.delivery_ratio_curve.iter().all(|r| (0.0..=1.0).contains(r)));
    // The residual histogram covers every node, and the idle current was accounted.
    let binned: u64 = lifetime.residual_energy_histogram.iter().sum();
    assert_eq!(binned, 50);
    assert!(lifetime.idle_energy_j > 0.0, "the preset's idle-listen current drains");
    assert!(lifetime.mean_residual_j >= lifetime.min_residual_j);
}

#[test]
fn unlimited_battery_lifecycle_off_runs_carry_no_lifetime_block() {
    let mut s = Scenario::quick_test();
    s.duration_s = 20.0;
    s.n_nodes = 12;
    s.group_size = 5;
    let report = run_protocol(&s, ProtocolKind::Flooding.to_protocol().as_ref());
    assert!(report.lifetime.is_none(), "the paper's model tracks no lifetime");
    let json = serde_json::to_string(&report).expect("reports serialize");
    assert!(!json.contains("\"lifetime\""), "the block must be absent, not null: {json}");
}

/// A flooding agent that records every protocol callback with its timestamp, so the
/// test can prove no callback ever reaches a dead node.
struct RecordingFlood {
    seen: std::collections::HashSet<u64>,
    log: Arc<Mutex<Vec<(NodeId, SimTime)>>>,
}

impl ProtocolAgent for RecordingFlood {
    type Payload = ();

    fn start(&mut self, _ctx: &mut NodeCtx<'_, ()>) {}

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_, ()>, packet: &Packet<()>) -> Disposition {
        self.log.lock().unwrap().push((ctx.id, ctx.now));
        let Some(tag) = packet.data else { return Disposition::Discarded };
        if !self.seen.insert(tag.seq) {
            return Disposition::Discarded;
        }
        if ctx.is_member() {
            ctx.deliver_data(tag);
        }
        ctx.broadcast_data(packet.size_bytes, ctx.radio.max_range_m, tag, ());
        Disposition::Consumed
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, ()>, _kind: u64, _key: u64) {
        self.log.lock().unwrap().push((ctx.id, ctx.now));
    }

    fn on_app_data(&mut self, ctx: &mut NodeCtx<'_, ()>, tag: DataTag, size: u32) {
        self.log.lock().unwrap().push((ctx.id, ctx.now));
        self.seen.insert(tag.seq);
        ctx.broadcast_data(size, ctx.radio.max_range_m, tag, ());
    }

    fn label(&self) -> &'static str {
        "recording-flood"
    }
}

/// Observer that snapshots the probe's alive vector at every epoch.
#[derive(Default)]
struct AliveRecorder {
    epochs: Vec<(SimTime, Vec<bool>)>,
}

impl ssmcast::manet::StabilizationObserver for AliveRecorder {
    fn probe_epoch(&self) -> SimDuration {
        SimDuration::from_millis(500)
    }
    fn on_epoch(&mut self, ctx: &ssmcast::manet::ProbeContext<'_>) {
        self.epochs.push((ctx.now, ctx.alive.to_vec()));
    }
    fn on_fault(
        &mut self,
        _k: &ssmcast::manet::FaultKind,
        _ctx: &ssmcast::manet::ProbeContext<'_>,
    ) {
    }
    fn finish(&mut self, _end: SimTime) -> Option<ssmcast::metrics::ConvergenceStats> {
        None
    }
}

#[test]
fn dead_nodes_never_transmit_receive_or_appear_alive() {
    // A 5-node line with tiny batteries and an idle-listen current: nodes die mid-run.
    let n = 5usize;
    let roles: Vec<GroupRole> =
        (0..n).map(|i| if i == 0 { GroupRole::Source } else { GroupRole::Member }).collect();
    let mobility: Vec<BoxedMobility> = (0..n)
        .map(|i| Box::new(Stationary::new(Vec2::new(i as f64 * 150.0, 0.0))) as BoxedMobility)
        .collect();
    let radio =
        RadioConfig { loss_probability: 0.0, collisions_enabled: false, ..RadioConfig::default() };
    let traffic = TrafficConfig {
        group: Default::default(),
        source: NodeId(0),
        data_rate_bps: 64_000.0,
        packet_size_bytes: 512,
        start: SimTime::from_secs(1),
        stop: SimTime::from_secs(28),
    };
    let mut setup = SimSetup::single(
        radio,
        traffic,
        roles,
        2.0, // joules: a couple of seconds of flooding
        SimDuration::from_secs(1),
        0.95,
        SeedSequence::new(99),
        MediumConfig::default(),
        FaultPlan::new(),
    );
    setup.lifecycle = setup.lifecycle.with_idle_power(5e-3, 0.0);
    let log = Arc::new(Mutex::new(Vec::new()));
    let agents = (0..n)
        .map(|_| RecordingFlood { seen: Default::default(), log: Arc::clone(&log) })
        .collect();
    let mut sim = NetworkSim::new(setup, mobility, agents);
    let mut observer = AliveRecorder::default();
    let report = sim.run_probed(SimDuration::from_secs(30), &mut observer);

    let deaths: Vec<Option<SimTime>> = (0..n).map(|i| sim.death_time(NodeId(i as u32))).collect();
    assert!(deaths.iter().filter(|d| d.is_some()).count() >= 2, "tiny batteries kill nodes");
    let lifetime = report.lifetime.as_ref().expect("finite batteries track lifetime");
    assert_eq!(lifetime.deaths as usize, deaths.iter().filter(|d| d.is_some()).count());
    assert_eq!(
        lifetime.first_death_s.map(SimTime::from_secs_f64),
        deaths.iter().flatten().min().copied()
    );

    // No protocol callback (reception, timer, app send) ever reached a dead node.
    for &(node, at) in log.lock().unwrap().iter() {
        if let Some(died) = deaths[node.index()] {
            assert!(at <= died, "{node:?} saw a callback at {at} after dying at {died}");
        }
    }
    // The battery books exactly its capacity, never more (the documented clamp).
    for (i, death) in deaths.iter().enumerate() {
        let b = sim.battery(NodeId(i as u32));
        assert!(b.consumed() <= 2.0 + 1e-12, "node {i} consumed {}", b.consumed());
        if death.is_some() {
            assert!(b.is_depleted());
            assert!((b.consumed() - 2.0).abs() < 1e-9, "a dead battery booked its capacity");
        }
    }
    // Probe alive-sets: a node reads false at every epoch after its death and true
    // before; death is permanent (no resurrection anywhere in the record).
    assert!(!observer.epochs.is_empty());
    for (at, alive) in &observer.epochs {
        for i in 0..n {
            match deaths[i] {
                Some(died) if *at >= died => {
                    assert!(!alive[i], "dead node {i} alive in the probe at {at}")
                }
                _ => assert!(alive[i], "node {i} misreported dead at {at}"),
            }
        }
    }
}

#[test]
fn duty_cycled_radios_miss_deliveries_but_still_transmit() {
    // Two stationary nodes in range; node 1 sleeps 70 % of every second. The source's
    // traffic keeps flowing (transmissions wake the radio), but node 1 misses the
    // frames that land in its sleep window, so PDR drops well below the always-on run.
    let run = |awake_fraction: f64| {
        let mut s = Scenario::quick_test().with_mobility(MobilityKind::StaticGrid);
        s.n_nodes = 9;
        s.group_size = 9;
        s.duration_s = 40.0;
        s.radio.loss_probability = 0.0;
        s = s.with_duty_cycle(1.0, awake_fraction);
        run_protocol(&s, ProtocolKind::Flooding.to_protocol().as_ref())
    };
    let always_on = run(1.0);
    let duty_cycled = run(0.3);
    assert!((always_on.pdr - 1.0).abs() < 1e-6, "lossless static flooding delivers all");
    assert!(
        duty_cycled.pdr < 0.9 * always_on.pdr,
        "sleeping radios must miss deliveries: {} vs {}",
        duty_cycled.pdr,
        always_on.pdr
    );
    assert!(duty_cycled.generated == always_on.generated, "the application never sleeps");
    assert!(duty_cycled.total_energy_j > 0.0);
}

#[test]
fn tx_power_control_only_lowers_energy_and_changes_nothing_else() {
    // With unlimited batteries the energy model is pure accounting: power control must
    // leave every traffic number identical and never increase a single energy figure.
    let run = |pc: bool| {
        let mut s = Scenario::quick_test();
        s.duration_s = 30.0;
        s.n_nodes = 20;
        s.group_size = 8;
        s = s.with_tx_power_control(pc);
        run_protocol(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware).to_protocol().as_ref())
    };
    let flat = run(false);
    let controlled = run(true);
    assert_eq!(flat.generated, controlled.generated);
    assert_eq!(flat.delivered, controlled.delivered);
    assert_eq!(flat.control_packets, controlled.control_packets);
    assert_eq!(flat.avg_delay_ms, controlled.avg_delay_ms);
    assert!(
        controlled.total_energy_j < flat.total_energy_j,
        "pricing by actual receiver distance must save energy: {} vs {}",
        controlled.total_energy_j,
        flat.total_energy_j
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// TX energy is monotone in the covered distance and never drops below the
    /// zero-range electronics floor — the invariant distance-based power control
    /// relies on to guarantee a transmission is never priced below its floor cost.
    #[test]
    fn tx_energy_is_monotone_in_distance_and_floored(
        d1 in 0.0f64..400.0,
        d2 in 0.0f64..400.0,
        bytes in 16u32..2048,
        alpha_tenths in 20u32..41,
    ) {
        let model = EnergyModel { alpha: f64::from(alpha_tenths) / 10.0, ..EnergyModel::default() };
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(model.tx_energy(near, bytes) <= model.tx_energy(far, bytes));
        let floor = model.tx_energy(0.0, bytes);
        prop_assert!(floor > 0.0, "the electronics term keeps the floor positive");
        prop_assert!(model.tx_energy(near, bytes) >= floor);
    }

    /// Duty-cycle schedules are deterministic per seed: same (config, n, seed) gives
    /// the same awake pattern, and the awake time integrates to the configured
    /// fraction over whole periods.
    #[test]
    fn duty_schedules_are_deterministic_and_integrate_to_the_fraction(
        seed in 0u64..10_000,
        period_ms in 100u64..2_000,
        awake_tenths in 1u64..10,
    ) {
        let fraction = awake_tenths as f64 / 10.0;
        let cfg = DutyCycleConfig::new(SimDuration::from_millis(period_ms), fraction);
        let a = DutySchedule::from_seeds(&cfg, 6, &SeedSequence::new(seed));
        let b = DutySchedule::from_seeds(&cfg, 6, &SeedSequence::new(seed));
        for i in 0..6u32 {
            let node = NodeId(i);
            for k in 0..40u64 {
                let t = SimTime::ZERO + SimDuration::from_millis(k * 73);
                prop_assert_eq!(a.is_awake(node, t), b.is_awake(node, t));
            }
            // Over 1000 whole periods the awake share is exactly the configured
            // fraction (up to the nanosecond rounding of the awake window).
            let horizon = SimTime::ZERO + SimDuration::from_millis(period_ms * 1000);
            let awake = a.awake_between(node, SimTime::ZERO, horizon).as_secs_f64();
            let expect = fraction * period_ms as f64;
            prop_assert!(
                (awake - expect).abs() < 1e-3,
                "node {}: awake {}s, expected {}s", i, awake, expect
            );
        }
    }

    /// Full-lifecycle runs (duty cycle + idle drain + finite batteries + power
    /// control) are deterministic per seed, like every other run.
    #[test]
    fn lifecycle_runs_are_deterministic_per_seed(
        seed in 0u64..5_000,
        awake_tenths in 3u64..11,
    ) {
        let build = || {
            let mut s = Scenario::quick_test().with_mobility(MobilityKind::StaticGrid);
            s.n_nodes = 12;
            s.group_size = 5;
            s.duration_s = 20.0;
            s.seed = seed;
            s.with_battery_capacity(3.0)
                .with_duty_cycle(0.5, awake_tenths as f64 / 10.0)
                .with_idle_power(2e-3, 1e-4)
                .with_tx_power_control(true)
        };
        let a = run_protocol(&build(), ProtocolKind::Flooding.to_protocol().as_ref());
        let b = run_protocol(&build(), ProtocolKind::Flooding.to_protocol().as_ref());
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    /// Energy conservation across the full lifecycle, for every builtin protocol:
    /// the batteries' total equals the session-attributed radio energy plus the
    /// continuous idle/sleep drain plus fault-injected drain spikes — nothing leaks,
    /// even with duty-cycled radios, depleting batteries (whose dying-gasp
    /// consumptions are clamped) and distance-priced transmissions.
    #[test]
    fn energy_is_conserved_under_the_full_lifecycle(
        seed in 0u64..10_000,
        cap in 3.0f64..30.0,
        awake_tenths in 3u64..11,
        idle_mw in 0.5f64..5.0,
        power_control in 0u32..2,
    ) {
        let registry = ProtocolRegistry::with_builtins();
        for name in registry.names() {
            let mut s = Scenario::quick_test().with_mobility(MobilityKind::StaticGrid);
            s.n_nodes = 16;
            s.group_size = 6;
            s.duration_s = 25.0;
            s.n_groups = 2;
            s.member_churn_rate = 0.05;
            s.seed = seed;
            s.faults.battery_drains = 2;
            s.faults.drain_joules = cap / 4.0;
            s.faults.window_start_s = 5.0;
            s.faults.window_end_s = 20.0;
            let s = s
                .with_battery_capacity(cap)
                .with_duty_cycle(0.5, awake_tenths as f64 / 10.0)
                .with_idle_power(idle_mw * 1e-3, 1e-5)
                .with_tx_power_control(power_control == 1);
            let protocol = registry.lookup(name).expect("builtin");
            let report = run_protocol(&s, protocol.as_ref());
            let groups = report.groups.as_ref().expect("two sessions carry a breakdown");
            let lifetime = report.lifetime.as_ref().expect("finite batteries track lifetime");
            let attributed: f64 = groups.iter().map(|g| g.energy_j).sum();
            let accounted = attributed + lifetime.continuous_drain_j() + lifetime.drained_j;
            let tolerance = 1e-9 * report.total_energy_j.max(1.0);
            prop_assert!(
                (accounted - report.total_energy_j).abs() <= tolerance,
                "{}: sessions {} + drain {} + spikes {} != batteries {}",
                name,
                attributed,
                lifetime.continuous_drain_j(),
                lifetime.drained_j,
                report.total_energy_j
            );
        }
    }
}
