//! Streaming-vs-exact equivalence: `MetricsMode::Streaming` trades the store-everything
//! report layer for fixed-budget sketches, and this suite pins down exactly what that
//! trade preserves.
//!
//! * Every scalar the exact mode reports — PDR, mean latency, energy totals,
//!   time-to-first-death — is **bit-equal** between modes: both accumulate them in the
//!   shared integer/FP counters on `Trace`, the sketches only replace the retained
//!   per-packet collections.
//! * Histogram quantiles are approximate by construction, but the error law is fixed:
//!   within one bin width, checked here against a fine-binned reference run.
//! * Streaming reports stay deterministic for a seed and invariant across neighbor-query
//!   modes and shard counts ∈ {1, 2, 8} — the sketch merges coarsen to
//!   content-determined levels, so merge order cannot leak into the bytes.
//! * The report layer's memory is bounded by configuration, not by event count: a
//!   synthetic horizon long enough to matter shows ≥ 10× less trace memory.

use ssmcast::core::MetricKind;
use ssmcast::dessim::{SimDuration, SimTime};
use ssmcast::manet::{DataTag, GroupId, NodeId, Trace};
use ssmcast::scenario::{run_protocol, MetricsConfig, ProtocolKind, Scenario, StreamingConfig};

/// A scenario with enough physics to exercise every scalar under test: finite batteries
/// plus idle drain (lifetime block, time-to-first-death), real traffic (latency,
/// duplicates), collisions and control overhead.
fn base_scenario() -> Scenario {
    let mut s = Scenario::quick_test();
    s.duration_s = 30.0;
    s.warmup_s = 2.0;
    s.with_battery_capacity(3.0).with_idle_power(5e-3, 1e-4)
}

fn report(s: &Scenario, kind: ProtocolKind) -> ssmcast::manet::SimReport {
    run_protocol(s, kind.to_protocol().as_ref())
}

#[test]
fn scalar_metrics_are_bit_equal_between_modes() {
    for kind in
        [ProtocolKind::Flooding, ProtocolKind::SsSpst(MetricKind::EnergyAware), ProtocolKind::Odmrp]
    {
        let exact = report(&base_scenario().with_metrics(MetricsConfig::exact()), kind);
        let streaming = report(&base_scenario().with_metrics(MetricsConfig::streaming()), kind);
        assert_eq!(exact.generated, streaming.generated);
        assert_eq!(exact.expected_deliveries, streaming.expected_deliveries);
        assert_eq!(exact.delivered, streaming.delivered);
        assert_eq!(exact.duplicate_deliveries, streaming.duplicate_deliveries);
        assert_eq!(exact.pdr.to_bits(), streaming.pdr.to_bits(), "{kind:?}: pdr drifted");
        assert_eq!(
            exact.avg_delay_ms.to_bits(),
            streaming.avg_delay_ms.to_bits(),
            "{kind:?}: mean latency drifted"
        );
        assert_eq!(exact.total_energy_j.to_bits(), streaming.total_energy_j.to_bits());
        assert_eq!(exact.overhear_energy_j.to_bits(), streaming.overhear_energy_j.to_bits());
        assert_eq!(
            exact.energy_per_delivered_mj.to_bits(),
            streaming.energy_per_delivered_mj.to_bits()
        );
        assert_eq!(exact.control_packets, streaming.control_packets);
        assert_eq!(exact.control_bytes, streaming.control_bytes);
        assert_eq!(exact.data_packets_tx, streaming.data_packets_tx);
        assert_eq!(exact.collisions, streaming.collisions);
        let (el, sl) = (exact.lifetime.as_ref().unwrap(), streaming.lifetime.as_ref().unwrap());
        assert_eq!(el.first_death_s, sl.first_death_s, "{kind:?}: time-to-first-death drifted");
        assert_eq!(el.deaths, sl.deaths);
        assert_eq!(el.alive_final, sl.alive_final);
        // The only report difference is the block that says which mode ran.
        assert!(exact.streaming.is_none(), "exact mode must not attach a streaming block");
        assert!(streaming.streaming.is_some(), "streaming mode must attach its block");
    }
}

#[test]
fn unavailability_matches_when_the_window_ledger_stays_uncoarsened() {
    // With a window budget comfortably above the run's traffic-window count the bounded
    // ledger never coarsens, so even the windowed metric is bit-equal.
    let exact = report(&base_scenario(), ProtocolKind::Flooding);
    let streaming =
        report(&base_scenario().with_metrics(MetricsConfig::streaming()), ProtocolKind::Flooding);
    let block = streaming.streaming.as_ref().unwrap();
    assert_eq!(block.window_level, 0, "this run must fit the default window budget");
    assert_eq!(exact.unavailability_ratio.to_bits(), streaming.unavailability_ratio.to_bits());
}

#[test]
fn histogram_quantiles_sit_within_one_bin_of_a_fine_reference() {
    // The fine run's quantile error is bounded by its own (tiny) bin, so it serves as
    // the "exact" reference; the default-width run must land within one of *its* bins.
    let fine_cfg = StreamingConfig {
        latency_bin_width_ms: 0.05,
        latency_bins: 16_384,
        ..StreamingConfig::default()
    };
    let coarse =
        report(&base_scenario().with_metrics(MetricsConfig::streaming()), ProtocolKind::Flooding);
    let fine = report(
        &base_scenario().with_metrics(MetricsConfig::with_streaming(fine_cfg)),
        ProtocolKind::Flooding,
    );
    let (c, f) = (coarse.streaming.as_ref().unwrap(), fine.streaming.as_ref().unwrap());
    assert_eq!(c.latency_overflow, 0, "test scenario must not overflow the default range");
    assert_eq!(f.latency_overflow, 0);
    let tolerance = c.latency_bin_width_ms + f.latency_bin_width_ms;
    assert!(
        (c.latency_p50_ms - f.latency_p50_ms).abs() <= tolerance,
        "p50 {} vs reference {} exceeds one bin ({tolerance} ms)",
        c.latency_p50_ms,
        f.latency_p50_ms,
    );
    assert!(
        (c.latency_p95_ms - f.latency_p95_ms).abs() <= tolerance,
        "p95 {} vs reference {} exceeds one bin ({tolerance} ms)",
        c.latency_p95_ms,
        f.latency_p95_ms,
    );
    // The maximum is tracked exactly in both, independent of binning.
    assert_eq!(c.latency_max_ms.to_bits(), f.latency_max_ms.to_bits());
}

#[test]
fn streaming_runs_are_deterministic_and_query_mode_invariant() {
    let render = |s: &Scenario| {
        serde_json::to_string(&report(s, ProtocolKind::Flooding)).expect("reports serialize")
    };
    let grid = base_scenario().with_metrics(MetricsConfig::streaming());
    let mut brute = base_scenario().with_metrics(MetricsConfig::streaming());
    brute.medium = ssmcast::manet::MediumConfig::brute_force();
    let first = render(&grid);
    assert_eq!(first, render(&grid), "same seed, same streaming bytes");
    assert_eq!(first, render(&brute), "neighbor-query mode leaked into the streaming report");
}

#[test]
fn streaming_reports_are_shard_count_invariant() {
    // Churned multi-group on the sharded engine: the hardest merge path — per-shard
    // trace pieces absorb into per-session sketches, then sessions fold into the
    // aggregate histogram. Every shard count must serialize the same bytes.
    let mut s = Scenario::quick_test().with_groups(2).with_churn_rate(0.3);
    s.duration_s = 25.0;
    s = s.with_metrics(MetricsConfig::streaming());
    let rendered = |shards: u32| {
        let sharded = s.with_shards(shards);
        serde_json::to_string(&report(&sharded, ProtocolKind::Flooding)).expect("reports serialize")
    };
    let baseline = rendered(1);
    assert!(baseline.contains("\"streaming\""), "sharded streaming run must attach the block");
    for shards in [2, 8] {
        assert_eq!(baseline, rendered(shards), "streaming report diverged at {shards} shards");
    }
}

#[test]
fn streaming_trace_memory_is_at_least_10x_below_exact_on_long_horizons() {
    // A week-long telemetry session in miniature: 50 000 packets, three receivers each.
    // Exact mode retains one map entry per packet and one set entry per delivery;
    // streaming holds the same story in fixed-budget sketches.
    let window = SimDuration::from_secs(1);
    let mut exact = Trace::new(window);
    let mut streaming = Trace::with_config(window, &MetricsConfig::streaming());
    for seq in 0..50_000u64 {
        let t = SimTime::from_secs_f64(seq as f64 * 0.5);
        let tag = DataTag { group: GroupId(0), origin: NodeId(0), seq, created_at: t };
        for tr in [&mut exact, &mut streaming] {
            tr.record_generated(seq, t, 3);
            for rx in 1..=3u32 {
                tr.record_delivery(&tag, NodeId(rx), t + SimDuration::from_millis(u64::from(rx)));
            }
        }
    }
    // Both modes tell the same scalar story...
    assert_eq!(exact.generated_count(), streaming.generated_count());
    assert_eq!(exact.delivered_count(), streaming.delivered_count());
    // ...but the exact trace's memory grew with the horizon while the sketches did not.
    let (e, s) = (exact.approx_mem_bytes(), streaming.approx_mem_bytes());
    assert!(e >= 10 * s, "exact trace holds {e} bytes, streaming {s}: less than the 10x bound");
}
