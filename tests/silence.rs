//! Silent stabilization, end to end: with beacon suppression enabled the steady-state
//! control bytes must collapse (that is the point of the feature), the phase split must
//! lose nothing relative to the classic control counters, and — the safety side —
//! fault recovery must stay statistically where the always-on protocol put it, because
//! evidence of illegitimacy snaps every agent back to the full beacon rate.

use ssmcast::core::MetricKind;
use ssmcast::manet::{FaultPlanSpec, SilenceConfig};
use ssmcast::scenario::{run_protocol, Metric, MobilityKind, ProtocolKind, Scenario};

/// A stationary single-group scenario: no mobility repair traffic, so every control
/// byte after convergence is pure legitimacy-confirmation spend — the regime the
/// suppression mechanism targets.
fn static_scenario() -> Scenario {
    let mut s = Scenario::quick_test().with_mobility(MobilityKind::StaticGrid);
    s.duration_s = 120.0;
    s.warmup_s = 5.0;
    s.n_nodes = 16;
    s.group_size = 6;
    s
}

#[test]
fn suppression_attaches_a_lossless_phase_split() {
    let s = static_scenario().with_silence(SilenceConfig::on());
    let report = run_protocol(&s, ProtocolKind::SsSpst(MetricKind::Hop).to_protocol().as_ref());
    let silence = report.silence.as_ref().expect("suppression-on runs attach a silence block");
    assert_eq!(silence.sessions.len(), 1, "one block per multicast session");
    // The split is an exact partition of the classic counters — nothing double-counted,
    // nothing dropped.
    assert_eq!(silence.total_control_packets(), report.control_packets);
    assert_eq!(silence.total_control_bytes(), report.control_bytes);
}

#[test]
fn steady_state_bytes_collapse_at_least_tenfold() {
    // The headline claim: on a quiet, legitimate network, suppressed agents spend at
    // least 10x fewer bytes-on-air than the always-on baseline. The baseline run has
    // no silence block, so *all* of its control bytes are steady-state spend (there is
    // no fault and no mobility; nothing it transmits repairs anything). The run is
    // paper-length (900 s) on exact physics: the cold-start convergence phase beacons
    // at full rate whatever the cap, so the collapse only shows once the capped
    // heartbeat has had time to amortize it — and channel loss must not spuriously
    // expire neighbours whose every beacon now matters.
    let mut quiet = static_scenario();
    quiet.duration_s = 900.0;
    quiet.radio.loss_probability = 0.0;
    quiet.radio.collisions_enabled = false;
    let kind = ProtocolKind::SsSpst(MetricKind::Hop);
    let baseline = run_protocol(&quiet, kind.to_protocol().as_ref());
    let suppressed = run_protocol(
        &quiet.with_silence(SilenceConfig::on().with_max_interval_factor(16.0)),
        kind.to_protocol().as_ref(),
    );
    let silence = suppressed.silence.as_ref().expect("suppression-on runs attach a silence block");
    assert!(
        silence.steady_control_bytes.saturating_mul(10) <= baseline.control_bytes,
        "steady-state bytes must drop >= 10x: suppressed {} vs always-on {}",
        silence.steady_control_bytes,
        baseline.control_bytes
    );
    // The drop must come from silence, not from breaking the tree: delivery stays put.
    assert!(
        suppressed.pdr >= baseline.pdr - 0.02,
        "suppression must not cost delivery ({} vs {})",
        suppressed.pdr,
        baseline.pdr
    );
}

#[test]
fn fault_recovery_is_statistically_unchanged_under_suppression() {
    // The safety half of the trade: suppression only slows the *confirmation* traffic.
    // On the FigFaults workload (corruption bursts mid-run), recovery must stay within
    // noise of the always-on run — staleness expiry tracks each neighbor's advertised
    // next-beacon bound, and any evidence of illegitimacy snaps the rate back — and no
    // episode may be left unrecovered that the baseline recovered.
    let mut base = static_scenario();
    base.duration_s = 90.0;
    base = base.with_faults(FaultPlanSpec::corruption(4, 0.3, 15.0, 60.0));
    let kind = ProtocolKind::SsSpst(MetricKind::EnergyAware);

    let (mut recovery_off, mut recovery_on) = (0.0f64, 0.0f64);
    let (mut unrecovered_off, mut unrecovered_on) = (0u64, 0u64);
    for seed in [11u64, 23, 47] {
        let mut off = base;
        off.seed = seed;
        let on = off.with_silence(SilenceConfig::on());
        let off_report = run_protocol(&off, kind.to_protocol().as_ref());
        let on_report = run_protocol(&on, kind.to_protocol().as_ref());
        recovery_off += Metric::MeanRecoveryS.extract(&off_report);
        recovery_on += Metric::MeanRecoveryS.extract(&on_report);
        unrecovered_off += off_report.convergence.as_ref().map_or(0, |c| c.unrecovered);
        unrecovered_on += on_report.convergence.as_ref().map_or(0, |c| c.unrecovered);
        // The suppressed run must still have spent real bytes on those recoveries.
        let silence = on_report.silence.as_ref().expect("silence block attaches");
        assert!(silence.recovery_control_bytes > 0, "faulted runs bucket repair traffic");
    }
    recovery_off /= 3.0;
    recovery_on /= 3.0;
    assert_eq!(
        unrecovered_on, unrecovered_off,
        "suppression must not strand episodes the always-on run recovered"
    );
    // Generous statistical slack: the suppressed run may detect a fault up to one
    // advertised beacon bound later, but must not change the recovery regime.
    assert!(
        recovery_on <= recovery_off * 1.5 + 1.0,
        "suppressed recovery ({recovery_on:.2}s) left the always-on regime ({recovery_off:.2}s)"
    );
    assert!(
        recovery_off <= recovery_on * 1.5 + 1.0,
        "always-on recovery ({recovery_off:.2}s) left the suppressed regime ({recovery_on:.2}s)"
    );
}
