//! Property tests for the mobility models: positions never escape the deployment area,
//! chord speeds never exceed the configured maximum (and reach at least the minimum
//! inside waypoint legs), and same-seed trajectories reproduce exactly across fresh
//! model instances — for arbitrary seeds and query timestamps.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssmcast::dessim::{SimDuration, SimTime};
use ssmcast::manet::{
    Area, GaussMarkov, GaussMarkovConfig, Mobility, RandomWaypoint, WaypointConfig,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random waypoint stays inside the field and never moves faster than `v_max`,
    /// for arbitrary seeds, speed ranges and (monotone) query cadences.
    #[test]
    fn waypoint_respects_bounds_and_speed_cap(
        seed in 0u64..10_000,
        v_max in 0.5f64..25.0,
        step_ms in 50u64..3_000,
    ) {
        let cfg = WaypointConfig {
            area: Area::square(750.0),
            min_speed: 0.1,
            max_speed: v_max,
            pause_secs: 0.0,
        };
        let mut m = RandomWaypoint::with_random_start(cfg, StdRng::seed_from_u64(seed));
        let dt = step_ms as f64 / 1_000.0;
        let mut prev = m.position_at(SimTime::ZERO);
        let mut fastest: f64 = 0.0;
        for k in 1..600u64 {
            let t = SimTime::from_nanos(k * step_ms * 1_000_000);
            let p = m.position_at(t);
            prop_assert!(cfg.area.contains(&p), "escaped the area: {p:?}");
            let speed = prev.distance(&p) / dt;
            prop_assert!(
                speed <= v_max + 1e-6,
                "chord speed {speed} exceeds v_max {v_max}"
            );
            fastest = fastest.max(speed);
            prev = p;
        }
        // With zero pause the node travels every leg at a speed in [v_min, v_max], so
        // fine-grained chords inside a leg must reach at least v_min at some point.
        prop_assert!(
            fastest >= cfg.min_speed - 1e-6,
            "never reached v_min = {}: fastest observed {fastest}",
            cfg.min_speed
        );
    }

    /// Same seed ⇒ the same trajectory, from a freshly constructed model instance,
    /// at every queried timestamp.
    #[test]
    fn waypoint_same_seed_reproduces_across_fresh_instances(
        seed in 0u64..10_000,
        v_max in 0.5f64..20.0,
        step_ms in 100u64..5_000,
    ) {
        let cfg = WaypointConfig::paper_default(v_max);
        let mut a = RandomWaypoint::with_random_start(cfg, StdRng::seed_from_u64(seed));
        let mut b = RandomWaypoint::with_random_start(cfg, StdRng::seed_from_u64(seed));
        for k in 0..300u64 {
            let t = SimTime::from_nanos(k * step_ms * 1_000_000);
            prop_assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    /// Gauss–Markov stays inside the field and under its hard speed cap for arbitrary
    /// seeds, mean speeds and query cadences (boundary clamping only shortens steps).
    #[test]
    fn gauss_markov_respects_bounds_and_speed_cap(
        seed in 0u64..10_000,
        mean_speed in 0.5f64..15.0,
        step_ms in 50u64..2_000,
    ) {
        let cfg = GaussMarkovConfig::with_mean_speed(
            Area::square(750.0),
            mean_speed,
            mean_speed * 2.0,
        );
        let mut m = GaussMarkov::with_random_start(cfg, StdRng::seed_from_u64(seed));
        let dt = step_ms as f64 / 1_000.0;
        let mut prev = m.position_at(SimTime::ZERO);
        for k in 1..600u64 {
            let t = SimTime::from_nanos(k * step_ms * 1_000_000);
            let p = m.position_at(t);
            prop_assert!(cfg.area.contains(&p), "escaped the area: {p:?}");
            let speed = prev.distance(&p) / dt;
            prop_assert!(
                speed <= cfg.max_speed + 1e-6,
                "chord speed {speed} exceeds cap {}",
                cfg.max_speed
            );
            prev = p;
        }
    }

    /// Same-seed Gauss–Markov trajectories reproduce across fresh instances.
    #[test]
    fn gauss_markov_same_seed_reproduces_across_fresh_instances(
        seed in 0u64..10_000,
        mean_speed in 0.5f64..15.0,
    ) {
        let cfg = GaussMarkovConfig::with_mean_speed(Area::square(600.0), mean_speed, 20.0);
        let mut a = GaussMarkov::with_random_start(cfg, StdRng::seed_from_u64(seed));
        let mut b = GaussMarkov::with_random_start(cfg, StdRng::seed_from_u64(seed));
        for k in 0..300u64 {
            let t = SimTime::ZERO + SimDuration::from_millis(k * 731);
            prop_assert_eq!(a.position_at(t), b.position_at(t));
        }
    }
}
