//! Integration tests of the pluggable MAC layer: byte-identity of the default policy,
//! contention accounting under CSMA, self-stabilizing TDMA convergence (including
//! re-convergence after injected state corruption), per-session collision attribution
//! and determinism of MAC-enabled runs across execution modes.

use ssmcast::core::MetricKind;
use ssmcast::scenario::{
    run_protocol, Experiment, MacConfig, MacKind, MobilityKind, ProtocolKind, Scenario,
    SweptParameter,
};

fn contended_base() -> Scenario {
    // Small area + doubled offered load: plenty of overlapping relays, so the
    // channel-access discipline is what separates the policies.
    let mut s = Scenario::quick_test();
    s.duration_s = 40.0;
    s.n_nodes = 20;
    s.group_size = 10;
    s.area_side_m = 400.0;
    s.data_rate_bps = 128_000.0;
    s
}

fn static_tdma_base() -> Scenario {
    let mut s = Scenario::quick_test().with_mobility(MobilityKind::StaticGrid);
    s.n_nodes = 16;
    s.group_size = 8;
    s.area_side_m = 400.0;
    s.mac = MacConfig::ss_tdma();
    s
}

#[test]
fn emitting_stats_for_the_default_policy_changes_no_physics() {
    let s = contended_base();
    let plain = run_protocol(&s, ProtocolKind::Flooding.to_protocol().as_ref());
    assert!(plain.mac.is_none(), "default runs must not attach a MacStats block");
    let mut with_stats = run_protocol(
        &s.with_mac(MacConfig::default().with_stats()),
        ProtocolKind::Flooding.to_protocol().as_ref(),
    );
    let mac = with_stats.mac.take().expect("emit_stats attaches the block");
    assert_eq!(with_stats, plain, "stats emission must be observation, not physics");
    assert_eq!(mac.policy, "random-jitter");
    assert_eq!(mac.frames_requested, mac.frames_sent, "the jitter policy never defers");
    assert_eq!(mac.mac_drops, 0);
    assert_eq!(mac.collisions, plain.collisions, "MAC block mirrors the channel counter");
    assert!(mac.mean_access_delay_ms > 0.0, "jitter backoff is a nonzero access delay");
    assert!(mac.airtime_utilization > 0.0 && mac.airtime_utilization < 1.0);
}

#[test]
fn carrier_sensing_and_tdma_beat_blind_jitter_under_load() {
    let s = contended_base();
    let protocol = ProtocolKind::Flooding.to_protocol();
    let jitter = run_protocol(&s.with_mac(MacConfig::default().with_stats()), protocol.as_ref());
    let csma = run_protocol(&s.with_mac(MacConfig::csma()), protocol.as_ref());
    let tdma = run_protocol(&s.with_mac(MacConfig::ss_tdma()), protocol.as_ref());
    let (j, c, t) =
        (jitter.mac.as_ref().unwrap(), csma.mac.as_ref().unwrap(), tdma.mac.as_ref().unwrap());
    assert!(j.collision_rate > 0.0, "blind jitter under load must collide");
    assert!(
        c.collision_rate < j.collision_rate,
        "carrier sensing must reduce the collision rate ({} vs {})",
        c.collision_rate,
        j.collision_rate
    );
    assert!(
        t.collision_rate < j.collision_rate,
        "slotting must reduce the collision rate ({} vs {})",
        t.collision_rate,
        j.collision_rate
    );
    // CSMA accounting: every requested frame is either on the air, dropped, or still
    // deferred past the horizon; deferrals are the retries that kept it honest.
    assert!(c.frames_sent + c.mac_drops <= c.frames_requested);
    assert!(c.deferrals > 0, "a contended channel must actually defer someone");
    assert_eq!(j.policy, "random-jitter");
    assert_eq!(c.policy, "csma");
    assert_eq!(t.policy, "ss-tdma");
}

#[test]
fn ss_tdma_converges_to_a_collision_free_schedule_on_a_static_topology() {
    // Prefix determinism: the first 30 s of the 60 s run replay the 30 s run event for
    // event, so the difference of the two collision counters is exactly the second
    // half's collisions — which must be zero once the slot schedule has stabilized.
    let protocol = ProtocolKind::SsSpst(MetricKind::Hop).to_protocol();
    let mut s = static_tdma_base();
    s.duration_s = 30.0;
    let half = run_protocol(&s, protocol.as_ref());
    s.duration_s = 60.0;
    let full = run_protocol(&s, protocol.as_ref());
    let (h, f) = (half.mac.as_ref().unwrap(), full.mac.as_ref().unwrap());
    assert_eq!(
        f.collisions, h.collisions,
        "a converged TDMA schedule must stay collision-free in the second half"
    );
    // Convergence time is reported: the last slot re-draw happened in the first half.
    match f.slot_last_redraw_s {
        Some(at) => {
            assert!(at < 30.0, "last re-draw at {at} s — schedule still churning");
            assert!(f.slot_redraws > 0);
        }
        None => assert_eq!(f.slot_redraws, 0, "no re-draw must mean a conflict-free draw"),
    }
}

#[test]
fn ss_tdma_reconverges_after_injected_state_corruption() {
    // FigFaults-style corruption bursts scramble protocol state *and* the TDMA slot
    // table mid-run (the fault hook randomizes slots without counting as recovery).
    // The same prefix trick shows the schedule heals: no collisions after 45 s.
    let protocol = ProtocolKind::SsSpst(MetricKind::Hop).to_protocol();
    let mut s = static_tdma_base();
    s.faults.corruption_bursts = 3;
    s.faults.corruption_fraction = 0.5;
    s.faults.window_start_s = 15.0;
    s.faults.window_end_s = 25.0;
    s.duration_s = 45.0;
    let half = run_protocol(&s, protocol.as_ref());
    s.duration_s = 60.0;
    let full = run_protocol(&s, protocol.as_ref());
    let (h, f) = (half.mac.as_ref().unwrap(), full.mac.as_ref().unwrap());
    assert_eq!(
        f.collisions, h.collisions,
        "TDMA must re-converge to collision-freedom after corruption"
    );
    assert!(
        f.slot_redraws >= 1,
        "healing from scrambled slots goes through conflict-driven re-draws"
    );
    if let Some(at) = f.slot_last_redraw_s {
        assert!(at < 45.0, "last re-draw at {at} s — schedule still churning after faults");
    }
}

#[test]
fn session_collision_blocks_partition_the_global_counter() {
    let mut s = contended_base();
    s.n_groups = 3;
    s.mac = MacConfig::csma();
    let report = run_protocol(&s, ProtocolKind::Odmrp.to_protocol().as_ref());
    let groups = report.groups.as_ref().expect("multi-group runs carry per-group blocks");
    assert_eq!(groups.len(), 3);
    let per_session: u64 = groups.iter().map(|g| g.collisions).sum();
    assert_eq!(per_session, report.collisions, "session collisions must sum to the global");
    assert_eq!(report.mac.as_ref().unwrap().collisions, report.collisions);
}

#[test]
fn mac_enabled_reports_are_deterministic_across_threads_and_query_modes() {
    use ssmcast::manet::MediumConfig;
    let mut base = contended_base();
    base.duration_s = 25.0;
    let run = |threads: usize, medium: MediumConfig| {
        Experiment::new(base.with_medium(medium))
            .protocol_kinds(&[ProtocolKind::SsSpst(MetricKind::Hop)])
            .sweep(SweptParameter::MacKind, [0.0, 1.0, 2.0])
            .threads(threads)
            .run()
    };
    let serial = run(1, MediumConfig::grid());
    let parallel = run(8, MediumConfig::grid());
    let brute = run(4, MediumConfig::brute_force());
    assert_eq!(serial.len(), 3);
    for ((a, b), c) in serial.iter().zip(&parallel).zip(&brute) {
        assert_eq!(a.reports, b.reports, "thread count changed a MAC-enabled report");
        assert_eq!(a.reports, c.reports, "neighbour-query mode changed a MAC-enabled report");
    }
    // The sweep actually exercised all three policies.
    let kinds: Vec<MacKind> = [MacKind::RandomJitter, MacKind::Csma, MacKind::SsTdma].to_vec();
    for (cell, kind) in serial.iter().zip(kinds) {
        let mac = cell.reports[0].mac.as_ref().expect("every MacKind column reports stats");
        let expected = match kind {
            MacKind::RandomJitter => "random-jitter",
            MacKind::Csma => "csma",
            MacKind::SsTdma => "ss-tdma",
        };
        assert_eq!(mac.policy, expected);
    }
}
