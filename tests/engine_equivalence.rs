//! Sequential-vs-sharded **byte equivalence** for faulted runs.
//!
//! The sharded engine is, in general, a different discretisation than the sequential
//! loop (position quantization, per-sender loss streams — see EXPERIMENTS.md). But on
//! *exact physics* — stationary nodes, zero channel loss, collisions off, zero MAC
//! jitter — every documented deviation is switched off, and the two engines must
//! produce byte-identical serialized reports even under an explicit fault plan. These
//! tests pin the two sharded-engine fidelity fixes:
//!
//! * blackouts now apply with the sequential queue's fault-first rank — a transmission
//!   scheduled at the blackout's own instant is already silenced (previously the
//!   sharded coordinator applied specials only after draining the instant, so
//!   same-instant events ran pre-blackout);
//! * the TDMA two-hop claim piggyback now ships the sender's claim row with the frame
//!   (previously it read the live table and was disabled under sharding);
//! * probed runs now apply every seeded fault coordinator-side with a per-fault
//!   observation, mirroring the sequential engine's fault-by-fault probe snapshots —
//!   the last documented probe-burst deviation is gone (see the burst-heavy test);
//! * harvest wakes route through the owning shard's queue, so sharded perpetual runs
//!   are no longer silently declined (see the harvest test, shards ∈ {1, 2, 8}).
//!
//! Most plans are injected directly into the built `SimSetup` (not via
//! `FaultPlanSpec`), keeping those runs unprobed so each pin isolates one mechanism;
//! the burst-heavy test goes through the spec on purpose to exercise the probed path.

use ssmcast::core::MetricKind;
use ssmcast::dessim::{SeedSequence, SimDuration, SimTime};
use ssmcast::manet::{FaultKind, FaultPlan, HarvestConfig, MacConfig, NodeId, SimReport};
use ssmcast::scenario::{
    build_mobility, build_setup, run_protocol, MobilityKind, ProtocolKind, Scenario,
};

/// Stationary, loss-free, collision-free, jitter-free physics: the regime in which the
/// sharded engine's coarser discretisation collapses onto the sequential one.
fn exact_physics_scenario() -> Scenario {
    let mut s = Scenario::quick_test().with_mobility(MobilityKind::StaticGrid);
    s.duration_s = 20.0;
    s.warmup_s = 2.0;
    s.n_nodes = 25;
    s.group_size = 10;
    s.radio.loss_probability = 0.0;
    s.radio.collisions_enabled = false;
    s.radio.mac_backoff_max = SimDuration::ZERO;
    s
}

/// Run `scenario` under `kind` with an explicitly injected fault plan. `shards == 0`
/// selects the sequential engine.
fn run_with_plan(
    scenario: &Scenario,
    kind: ProtocolKind,
    shards: u32,
    plan: &dyn Fn(&Scenario) -> FaultPlan,
) -> SimReport {
    let mut s = *scenario;
    if shards > 0 {
        s = s.with_shards(shards);
    }
    let seeds = SeedSequence::new(s.seed);
    let mut setup = build_setup(&s, seeds);
    setup.faults = plan(&s);
    let mobility = build_mobility(&s, &seeds);
    kind.to_protocol().run(&s, setup, mobility)
}

fn assert_engine_equivalent(
    scenario: &Scenario,
    kind: ProtocolKind,
    plan: &dyn Fn(&Scenario) -> FaultPlan,
    label: &str,
) -> SimReport {
    let sequential = run_with_plan(scenario, kind, 0, plan);
    let seq_bytes = serde_json::to_string(&sequential).expect("reports serialize");
    for shards in [1u32, 3] {
        let sharded = run_with_plan(scenario, kind, shards, plan);
        let sh_bytes = serde_json::to_string(&sharded).expect("reports serialize");
        assert_eq!(
            seq_bytes, sh_bytes,
            "{label}: sharded ({shards}) faulted report diverged from the sequential engine"
        );
    }
    sequential
}

/// The k-th CBR send instant of session 0 — exactly as the traffic generator schedules
/// it (integer-nanosecond interval steps from the traffic start).
fn send_instant(scenario: &Scenario, k: u32) -> SimTime {
    let seeds = SeedSequence::new(scenario.seed);
    let setup = build_setup(scenario, seeds);
    let traffic = &setup.sessions[0].traffic;
    traffic.start + traffic.interval().saturating_mul(u64::from(k))
}

#[test]
fn faulted_runs_are_engine_equivalent_for_every_fault_kind() {
    let s = exact_physics_scenario();
    let plan = |_: &Scenario| {
        FaultPlan::new()
            .with(SimTime::from_secs_f64(4.0), FaultKind::Corrupt { node: NodeId(3) })
            .with(SimTime::from_secs_f64(5.5), FaultKind::Corrupt { node: NodeId(7) })
            .with(
                SimTime::from_secs_f64(7.0),
                FaultKind::Crash { node: NodeId(12), down_for: SimDuration::from_secs(4) },
            )
            .with(
                SimTime::from_secs_f64(9.25),
                FaultKind::Blackout { node: NodeId(6), duration: SimDuration::from_secs(2) },
            )
    };
    for kind in [ProtocolKind::SsSpst(MetricKind::EnergyAware), ProtocolKind::Flooding] {
        let report = assert_engine_equivalent(&s, kind, &plan, kind.name());
        assert!(report.generated > 100, "{}: CBR must generate traffic", kind.name());
        assert!(report.delivered > 0, "{}: the faulted grid still delivers", kind.name());
    }
}

#[test]
fn a_blackout_at_a_send_instant_silences_the_sender_on_both_engines() {
    // The sequential queue ranks faults before same-instant application sends; the
    // sharded coordinator must do the same. Pin it with a blackout landing on the
    // source at *exactly* one of its CBR send instants: pre-fix, the sharded engine
    // delivered that packet before the blackout took effect.
    let s = exact_physics_scenario();
    let at = send_instant(&s, 10);
    let source = NodeId(0);
    let plan = move |_: &Scenario| {
        FaultPlan::new()
            .with(at, FaultKind::Blackout { node: source, duration: SimDuration::from_secs(1) })
    };
    let faulted =
        assert_engine_equivalent(&s, ProtocolKind::Flooding, &plan, "blackout at send instant");
    // The blackout must actually have bitten: the send at its first instant (plus the
    // ~15 follow-ups inside the one-second fade) reaches nobody.
    let clean = run_with_plan(&s, ProtocolKind::Flooding, 0, &|_| FaultPlan::new());
    assert!(
        faulted.delivered < clean.delivered,
        "the source's blacked-out sends must not reach the group ({} >= {})",
        faulted.delivered,
        clean.delivered
    );
}

#[test]
fn faulted_ss_tdma_runs_are_engine_equivalent() {
    // Exercises the claim-row piggyback across shard lanes: the default 32-slot frame
    // gives 25 seeded nodes real slot collisions, so schedule convergence leans on
    // two-hop reads of overheard control frames — and each sharded lane only ever
    // observes its own deliveries, so those reads are correct *only* when the sender's
    // claim row rides on the frame. Disabling the piggyback makes this test fail:
    // cross-shard sender rows read as unclaimed and the sharded schedule re-converges
    // along a different trajectory than the sequential one.
    let s = exact_physics_scenario().with_mac(MacConfig::ss_tdma());
    let plan = |_: &Scenario| {
        FaultPlan::new()
            .with(SimTime::from_secs_f64(5.0), FaultKind::Corrupt { node: NodeId(8) })
            .with(SimTime::from_secs_f64(6.0), FaultKind::Corrupt { node: NodeId(16) })
    };
    let report =
        assert_engine_equivalent(&s, ProtocolKind::SsSpst(MetricKind::Hop), &plan, "ss-tdma");
    let mac = report.mac.expect("ss-tdma always attaches a MacStats block");
    assert_eq!(mac.policy, "ss-tdma");
}

#[test]
fn silence_enabled_faulted_runs_are_engine_equivalent() {
    // Suppression on: the beacon backoff state machine runs inside the agents (engine
    // agnostic), and the sharded runtime buckets the byte split through its frozen
    // recovering flags — the whole silence block must match the sequential engine.
    let s = exact_physics_scenario()
        .with_silence(ssmcast::manet::SilenceConfig::on().with_max_interval_factor(8.0));
    let plan = |_: &Scenario| {
        FaultPlan::new().with(SimTime::from_secs_f64(8.0), FaultKind::Corrupt { node: NodeId(4) })
    };
    let report =
        assert_engine_equivalent(&s, ProtocolKind::SsSpst(MetricKind::Hop), &plan, "silence");
    let silence = report.silence.expect("suppression-on runs attach a silence block");
    assert_eq!(
        silence.total_control_bytes(),
        report.control_bytes,
        "the phase split must lose nothing relative to the classic control counters"
    );
}

#[test]
fn churned_zero_energy_runs_are_engine_equivalent() {
    // Membership events replicate into every shard's queue at their exact instants;
    // with a second session and live churn the per-group blocks must still match.
    // Energy constants are zeroed because the engines reduce per-session energy in
    // different floating-point orders — with them, byte equality isolates the integer
    // trace and membership bookkeeping this test is about.
    let mut s = exact_physics_scenario().with_groups(2).with_churn_rate(0.4);
    s.radio.energy.e_elec_per_bit = 0.0;
    s.radio.energy.e_amp_per_bit = 0.0;
    let plan = |_: &Scenario| {
        FaultPlan::new().with(
            SimTime::from_secs_f64(6.5),
            FaultKind::Blackout { node: NodeId(2), duration: SimDuration::from_secs(2) },
        )
    };
    let report = assert_engine_equivalent(&s, ProtocolKind::Odmrp, &plan, "churned multi-group");
    let groups = report.groups.expect("churned runs attach per-group blocks");
    assert_eq!(groups.len(), 2);
}

/// Run `scenario` through the normal spec-driven runner (faults seeded from
/// `scenario.faults`, hence *probed*). `shards == 0` selects the sequential engine.
fn run_spec(scenario: &Scenario, kind: ProtocolKind, shards: u32) -> SimReport {
    let mut s = *scenario;
    if shards > 0 {
        s = s.with_shards(shards);
    }
    run_protocol(&s, kind.to_protocol().as_ref())
}

#[test]
fn probed_burst_heavy_runs_are_engine_equivalent() {
    // Each burst corrupts ~half the grid at one instant and the run is probed, so the
    // coordinator must observe the stabilization probe after *each* applied fault with
    // that fault's own state — the sequential engine's fault-by-fault snapshots.
    // Pre-fix, the sharded path batched same-instant bursts into one observation and
    // the convergence block diverged.
    let mut s = exact_physics_scenario();
    s.faults.corruption_bursts = 5;
    s.faults.corruption_fraction = 0.5;
    s.faults.window_start_s = 4.0;
    s.faults.window_end_s = 14.0;
    let sequential = run_spec(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware), 0);
    let seq_bytes = serde_json::to_string(&sequential).expect("reports serialize");
    for shards in [1u32, 3] {
        let sharded = run_spec(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware), shards);
        let sh_bytes = serde_json::to_string(&sharded).expect("reports serialize");
        assert_eq!(
            seq_bytes, sh_bytes,
            "probed burst-heavy sharded ({shards}) report diverged from the sequential engine"
        );
    }
    let convergence = sequential.convergence.expect("probed runs attach a convergence block");
    assert!(
        convergence.recovered + convergence.unrecovered >= 1,
        "the bursts must open at least one stabilization episode"
    );
}

#[test]
fn harvest_enabled_runs_are_engine_equivalent_at_every_shard_count() {
    // Finite batteries with continuous idle drain, deaths well inside the horizon, and
    // harvest-until-threshold wakes short enough for several death/revive cycles: the
    // sharded engine must route each wake through the owning shard's queue and fold
    // revived nodes into the same lifetime accounting the sequential loop produces.
    // Pre-fix the sharded engine silently dropped `HarvestConfig::on` entirely.
    let mut s = exact_physics_scenario();
    s.battery_capacity_j = 0.03;
    s.lifecycle = s.lifecycle.with_idle_power(2e-3, 1e-4);
    s.harvest = HarvestConfig::on(0.004, 0.01, 0.2);
    let plan = |_: &Scenario| FaultPlan::new();
    let sequential = run_with_plan(&s, ProtocolKind::Flooding, 0, &plan);
    let seq_bytes = serde_json::to_string(&sequential).expect("reports serialize");
    for shards in [1u32, 2, 8] {
        let sharded = run_with_plan(&s, ProtocolKind::Flooding, shards, &plan);
        let sh_bytes = serde_json::to_string(&sharded).expect("reports serialize");
        assert_eq!(
            seq_bytes, sh_bytes,
            "harvest-enabled sharded ({shards}) report diverged from the sequential engine"
        );
    }
    let lifetime = sequential.lifetime.expect("finite batteries attach a lifetime block");
    assert!(lifetime.deaths > 0, "the scenario must actually deplete nodes");
    assert!(
        lifetime.first_death_s.is_some_and(|t| t < s.duration_s),
        "first depletion lands inside the run"
    );
    assert!(
        lifetime.alive_curve.windows(2).any(|w| w[1] > w[0]),
        "harvest wakes must revive depleted nodes (the alive curve rises somewhere): {:?}",
        lifetime.alive_curve
    );
}
