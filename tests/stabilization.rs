//! Empirical self-stabilization: inject transient faults into running networks and
//! verify — via the legitimacy predicate probed by `StabilizationProbe` — that the
//! SS-SPST family re-converges to a correct multicast tree within a bounded number of
//! beacon rounds, that faulted runs are byte-for-byte reproducible, and that
//! non-stabilizing baselines measurably do *not* recover the same way under the same
//! seeded fault schedule.

use ssmcast::core::MetricKind;
use ssmcast::manet::FaultPlanSpec;
use ssmcast::scenario::{
    run_protocol, Experiment, MobilityKind, ProtocolKind, Scenario, SweptParameter,
};
use ssmcast_metrics::ConvergenceStats;

/// A static 4×4 grid (no mobility) so recovery time measures stabilization, not tree
/// churn, with one corruption burst hitting half the nodes mid-run.
fn fault_scenario() -> Scenario {
    let mut s = Scenario::quick_test().with_mobility(MobilityKind::StaticGrid);
    s.n_nodes = 16;
    s.group_size = 6;
    s.duration_s = 60.0;
    s.faults = FaultPlanSpec::corruption(1, 0.5, 25.0, 25.0); // burst exactly at t = 25 s
    s.faults.probe_epoch_s = 0.5;
    s
}

fn convergence_of(s: &Scenario, kind: ProtocolKind) -> ConvergenceStats {
    let report = run_protocol(s, kind.to_protocol().as_ref());
    report.convergence.unwrap_or_else(|| {
        panic!("{}: faulted runs must carry a ConvergenceStats block", kind.name())
    })
}

#[test]
fn every_ss_preset_recovers_from_a_corruption_burst_within_bounded_beacon_rounds() {
    let s = fault_scenario();
    // Bound: ten beacon intervals. The guarded commands repair local state in one
    // round; corrupted costs/pointers take O(diameter) further rounds to wash out.
    let bound_s = 10.0 * s.beacon_interval_s;
    for kind in MetricKind::ALL {
        let c = convergence_of(&s, ProtocolKind::SsSpst(kind));
        let name = kind.protocol_name();
        assert_eq!(c.faults_injected, 8, "{name}: ceil(0.5 × 16) nodes corrupted");
        assert!(
            c.first_legitimate_s.is_some(),
            "{name}: the tree must form at all before the fault"
        );
        assert_eq!(c.unrecovered, 0, "{name}: the burst must not be fatal");
        assert!(c.recovered >= 1, "{name}: the corruption episode must close");
        assert!(
            c.max_recovery_s <= bound_s,
            "{name}: recovery took {:.1}s, over the {bound_s}s bound",
            c.max_recovery_s
        );
        assert!(
            c.epochs_legitimate > c.epochs_probed / 2,
            "{name}: a static grid should be legitimate most of the run"
        );
    }
}

#[test]
fn same_seed_and_fault_plan_reproduce_byte_identical_reports() {
    let s = fault_scenario();
    for kind in
        [ProtocolKind::SsSpst(MetricKind::EnergyAware), ProtocolKind::Maodv, ProtocolKind::Flooding]
    {
        let a = run_protocol(&s, kind.to_protocol().as_ref());
        let b = run_protocol(&s, kind.to_protocol().as_ref());
        assert_eq!(a, b, "{}: faulted runs must be deterministic", kind.name());
        assert!(a.convergence.is_some());
    }
    // A different seed draws a different schedule and a different outcome.
    let mut other = s;
    other.seed ^= 0xBEEF;
    let a = run_protocol(&s, ProtocolKind::Flooding.to_protocol().as_ref());
    let b = run_protocol(&other, ProtocolKind::Flooding.to_protocol().as_ref());
    assert_ne!(a, b);
}

#[test]
fn ss_spst_converges_where_the_non_stabilizing_baseline_never_does() {
    // Identical scenario, identical seeded fault schedule: the self-stabilizing tree
    // protocol re-establishes legitimacy after the burst; blind flooding maintains no
    // rooted structure, so its "convergence time" is unbounded — the probe reports the
    // episode as never recovered. This is the measured difference the paper's lemmas
    // only assert.
    let s = fault_scenario();
    let ss = convergence_of(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware));
    let flood = convergence_of(&s, ProtocolKind::Flooding);
    assert!(ss.recovered >= 1 && ss.unrecovered == 0);
    assert!(ss.mean_recovery_s > 0.0, "recovery takes measurable time");
    assert_eq!(flood.epochs_legitimate, 0, "flooding never forms a legitimate tree");
    assert_eq!(flood.recovered, 0, "so no fault episode ever closes");
    assert!(flood.unrecovered >= 1, "the burst episode stays open to the end of the run");
    assert_eq!(
        ss.faults_injected, flood.faults_injected,
        "both protocols faced the same seeded schedule"
    );
}

#[test]
fn beacon_rate_drives_recovery_speed_across_tree_protocols() {
    // MAODV repairs routes only on its 5 s Group Hello flood; SS-SPST-E beacons every
    // 2 s. Under the same corruption burst the slower control plane must need at least
    // as long to re-establish a legitimate tree. (Deterministic seeds: this is a stable
    // measured comparison, not a flaky heuristic.)
    let s = fault_scenario();
    let ss = convergence_of(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware));
    let maodv = convergence_of(&s, ProtocolKind::Maodv);
    assert!(ss.recovered >= 1);
    if maodv.recovered > 0 {
        assert!(
            maodv.mean_recovery_s >= ss.mean_recovery_s,
            "MAODV ({:.2}s) should not out-recover the 2 s-beacon SS-SPST-E ({:.2}s)",
            maodv.mean_recovery_s,
            ss.mean_recovery_s
        );
    } else {
        assert!(maodv.unrecovered >= 1, "unrecovered episodes must be accounted");
    }
}

#[test]
fn fault_free_scenarios_stay_byte_identical_to_pre_fault_builds() {
    // The probe only engages when faults are configured: a default scenario's report
    // must carry no convergence block (and therefore hash/compare exactly as before
    // the fault subsystem existed).
    let mut s = Scenario::quick_test();
    s.duration_s = 25.0;
    s.n_nodes = 12;
    let report = run_protocol(&s, ProtocolKind::SsSpst(MetricKind::Hop).to_protocol().as_ref());
    assert!(report.convergence.is_none());
}

#[test]
fn experiment_grid_threads_fault_plans_into_every_cell() {
    let mut base = fault_scenario();
    base.duration_s = 40.0;
    base.faults.window_start_s = 20.0;
    base.faults.window_end_s = 20.0;
    let cells = Experiment::new(base)
        .protocol_kinds(&[ProtocolKind::SsSpst(MetricKind::EnergyAware), ProtocolKind::Flooding])
        .sweep(SweptParameter::Velocity, [1.0, 5.0])
        .reps(2)
        .run();
    assert_eq!(cells.len(), 4);
    for cell in &cells {
        assert_eq!(cell.reports.len(), 2);
        for r in &cell.reports {
            let c = r.convergence.as_ref().expect("fault grids probe every run");
            assert!(c.faults_injected > 0);
            assert!(c.epochs_probed > 0);
        }
    }
    // The `Experiment::faults` override reaches columns built before the call.
    let mut clean = fault_scenario();
    clean.faults = FaultPlanSpec::none();
    let overridden = Experiment::new(clean)
        .protocol_kinds(&[ProtocolKind::Flooding])
        .sweep(SweptParameter::Velocity, [1.0])
        .faults(FaultPlanSpec::corruption(1, 0.3, 20.0, 20.0))
        .run();
    assert!(overridden[0].reports[0].convergence.is_some());
}

#[test]
fn drain_spikes_against_unlimited_batteries_are_not_phantom_faults() {
    // The paper's default batteries are unlimited, so a drain spike changes nothing —
    // it must not be reported as an injected fault or open an episode. With a finite
    // capacity the same plan bites and is accounted.
    let mut s = fault_scenario();
    s.faults = FaultPlanSpec::none();
    s.faults.battery_drains = 3;
    s.faults.drain_joules = 1.0e9;
    s.faults.window_start_s = 20.0;
    s.faults.window_end_s = 30.0;
    let no_op = convergence_of(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware));
    assert_eq!(no_op.faults_injected, 0, "unlimited batteries make drains physical no-ops");
    assert_eq!(no_op.recovered + no_op.unrecovered, 0, "so no episode may open");

    let mut finite = s;
    finite.battery_capacity_j = 50.0;
    let hit = convergence_of(&finite, ProtocolKind::SsSpst(MetricKind::EnergyAware));
    assert!(hit.faults_injected >= 1, "finite batteries feel at least the first spike");
}

#[test]
fn fault_burst_sweep_composes_with_base_scenario_knobs() {
    // The documented recipe: fault knobs on the base scenario, burst count swept.
    // Every column must actually inject faults, scaling with x.
    let mut base = fault_scenario();
    base.duration_s = 40.0;
    base.faults = FaultPlanSpec::none();
    base.faults.corruption_fraction = 0.5;
    let cells = Experiment::new(base)
        .protocol_kinds(&[ProtocolKind::Flooding])
        .sweep(SweptParameter::FaultBursts, [1.0, 3.0])
        .run();
    assert_eq!(cells.len(), 2);
    let f1 = cells[0].reports[0].convergence.as_ref().expect("column x=1 probes").faults_injected;
    let f3 = cells[1].reports[0].convergence.as_ref().expect("column x=3 probes").faults_injected;
    assert_eq!(f1, 8, "1 burst × ceil(0.5 × 16) nodes");
    assert_eq!(f3, 24, "3 bursts × ceil(0.5 × 16) nodes");
}
