//! Integration tests of the Experiment API v2 surface as seen through the umbrella
//! crate: registry-driven protocol selection, mobility plugins, the `Experiment` builder
//! with streaming sinks, and equivalence with directly seeded `run_protocol` calls.

use ssmcast::scenario::{
    derive_cell_seed, run_protocol, sweep, CsvStreamSink, Experiment, FigureId, MemorySink,
    MobilityKind, ProgressSink, ProtocolKind, ProtocolRegistry, RunSink, Scenario, SweptParameter,
    TeeSink,
};

fn small_base() -> Scenario {
    let mut s = Scenario::quick_test();
    s.duration_s = 20.0;
    s.n_nodes = 12;
    s.group_size = 5;
    s
}

#[test]
fn registry_names_round_trip_for_every_builtin() {
    let registry = ProtocolRegistry::with_builtins();
    for kind in ProtocolKind::all_builtin() {
        let protocol = kind.to_protocol();
        let looked_up = registry
            .lookup(protocol.name())
            .unwrap_or_else(|| panic!("{} is not registered", protocol.name()));
        assert_eq!(looked_up.name(), kind.name());
    }
}

#[test]
fn sweep_grid_shape_and_seeding_match_directly_seeded_runs() {
    // `sweep` delegates to `Experiment`; each cell must equal a directly-run scenario
    // with the documented `derive_cell_seed`, pinned here against `run_protocol`.
    let base = small_base();
    let xs = [1.0, 10.0];
    let protocols = [ProtocolKind::Flooding, ProtocolKind::Odmrp];
    let grid = sweep(&base, &xs, &protocols, 2, |s, v| s.max_speed_mps = v);
    assert_eq!(grid.len(), 4);
    for (i, cell) in grid.iter().enumerate() {
        let (xi, pi) = (i / protocols.len(), i % protocols.len());
        assert_eq!(cell.x, xs[xi]);
        assert_eq!(cell.protocol, protocols[pi].name());
        assert_eq!(cell.reports.len(), 2);
        for (rep, report) in cell.reports.iter().enumerate() {
            let mut manual = base;
            manual.max_speed_mps = xs[xi];
            manual.seed = derive_cell_seed(base.seed, rep, xi);
            let expected = run_protocol(&manual, protocols[pi].to_protocol().as_ref());
            assert_eq!(*report, expected, "cell xi={xi} pi={pi} rep={rep} diverged");
        }
    }
}

#[test]
fn figure_preset_runs_through_a_streaming_sink_stack() {
    // Fig10 at smoke scale: 4 beacon intervals × 2 protocols. Tee the stream into
    // memory + CSV + progress and confirm all three see the full grid, in order.
    let mut memory = MemorySink::new();
    let mut csv = CsvStreamSink::new(Vec::new());
    let mut progress = ProgressSink::new(Vec::new());
    let result = {
        let mut tee = TeeSink::new(vec![&mut memory, &mut csv, &mut progress]);
        ssmcast::scenario::run_figure_with_sink(FigureId::Fig10, 0.2, 1, &mut tee)
    };
    let expected_cells = result.spec.xs.len() * result.spec.protocols.len();
    assert_eq!(result.cells.len(), expected_cells);
    assert_eq!(memory.cells().len(), expected_cells);
    let csv_text = String::from_utf8(csv.into_inner()).unwrap();
    assert_eq!(csv_text.lines().count(), expected_cells + 1, "header + one row per rep");
    let progress_text = String::from_utf8(progress.into_inner()).unwrap();
    assert_eq!(progress_text.lines().count(), expected_cells);
    assert!(progress_text.contains(&format!("[1/{expected_cells}]")));
    assert!(progress_text.contains(&format!("[{expected_cells}/{expected_cells}]")));
}

#[test]
fn every_mobility_kind_runs_the_same_experiment_grid() {
    for kind in MobilityKind::ALL {
        let base = small_base().with_mobility(kind);
        let cells = Experiment::new(base)
            .protocol_kinds(&[ProtocolKind::Flooding])
            .sweep(SweptParameter::Velocity, [1.0, 10.0])
            .run();
        assert_eq!(cells.len(), 2, "{}", kind.name());
        for cell in &cells {
            assert_eq!(cell.reports.len(), 1);
            assert!(cell.reports[0].generated > 0, "{}", kind.name());
        }
    }
}

#[test]
fn grid_seeds_never_collide() {
    let mut seen = std::collections::HashSet::new();
    for rep in 0..32 {
        for xi in 0..32 {
            seen.insert(derive_cell_seed(0x55_5357, rep, xi));
        }
    }
    assert_eq!(seen.len(), 32 * 32);
}

#[test]
fn custom_sink_sees_grid_order() {
    struct Indices(Vec<usize>);
    impl RunSink for Indices {
        fn on_cell(
            &mut self,
            info: &ssmcast::scenario::CellInfo,
            _cell: &ssmcast::scenario::SweepCell,
        ) {
            self.0.push(info.cell_index);
        }
    }
    let mut sink = Indices(Vec::new());
    Experiment::new(small_base())
        .protocol_kinds(&[ProtocolKind::Flooding, ProtocolKind::Maodv])
        .sweep(SweptParameter::Velocity, [1.0, 5.0])
        .run_with_sink(&mut sink);
    assert_eq!(sink.0, vec![0, 1, 2, 3]);
}
