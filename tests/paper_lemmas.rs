//! Property-based tests of the paper's Section-5 lemmas on randomly generated connected
//! topologies: convergence from arbitrary states, closure once stabilized, and
//! loop-freedom (no count-to-infinity).
//!
//! Quiescence note: for the link-based metrics (Hop, SS-SPST-T) the guarded commands are a
//! Bellman-Ford relaxation and the synchronous model provably quiesces, which is asserted
//! below. For the node-based metrics (F, E) the overhead of joining a parent depends on the
//! parent's *other* children, and in a perfectly synchronous execution coupled nodes can
//! keep re-pricing each other on adversarial topologies; the event-driven agent breaks this
//! symmetry with timer jitter. For F/E the tests therefore assert the structural lemmas
//! (spanning, loop-freedom, hop bound — Lemma 3) after a bounded number of rounds, plus
//! closure whenever quiescence is reached. See EXPERIMENTS.md, "Correctness properties".

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssmcast::core::{MetricKind, MetricParams, MulticastTopology, SyncModel};
use ssmcast::manet::{NodeId, TopologySnapshot, Vec2};

/// Build a random geometric topology that is guaranteed to be connected: nodes are placed
/// uniformly in a square sized so that the unit-disc graph is usually connected, and if it
/// is not, the area shrinks until it is.
fn random_connected_topology(seed: u64, n: usize, member_bits: u64) -> MulticastTopology {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let range = 250.0;
    let mut side = 650.0;
    loop {
        let positions: Vec<Vec2> =
            (0..n).map(|_| Vec2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side))).collect();
        let snap = TopologySnapshot::new(positions, range);
        if snap.is_connected() {
            let members: Vec<bool> =
                (0..n).map(|i| i == 0 || (member_bits >> i) & 1 == 1).collect();
            return MulticastTopology::from_snapshot(&snap, NodeId(0), members);
        }
        // Too sparse: shrink the field and try again (always terminates — eventually every
        // pair is within range).
        side *= 0.85;
    }
}

/// Run the model for up to `rounds` rounds; return true if it quiesced.
fn settle(model: &mut SyncModel, rounds: usize) -> bool {
    model.run_to_stabilization(rounds).is_some()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Lemma 1 + 3: every metric reaches a spanning, loop-free, hop-bounded tree from the
    /// protocol's initial state; the link-based metrics additionally quiesce.
    #[test]
    fn stabilizes_to_a_spanning_tree_from_initial_state(
        seed in 0u64..10_000,
        n in 5usize..20,
        member_bits in 0u64..u64::MAX,
    ) {
        let topo = random_connected_topology(seed, n, member_bits);
        for kind in MetricKind::ALL {
            let mut model = SyncModel::new(topo.clone(), kind, MetricParams::default());
            let quiesced = settle(&mut model, 20 * n);
            if !kind.is_node_based() {
                prop_assert!(quiesced, "{kind:?} must quiesce on {n} nodes");
            }
            // Structural lemmas are asserted at quiescence; mid-churn snapshots of the
            // node-based metrics can legitimately be non-spanning while a count-to-infinity
            // episode is being repaired (see file-level note).
            if quiesced {
                let tree = model.tree();
                prop_assert!(tree.is_spanning(), "{kind:?} tree does not span");
                prop_assert!(!tree.has_cycle(), "{kind:?} tree has a loop");
                prop_assert!(tree.max_depth() <= n as u32, "hop bound violated");
            }
        }
    }

    /// Self-stabilization proper: recovery from *arbitrary* (scrambled) states, not just
    /// the clean initial state.
    #[test]
    fn recovers_from_arbitrary_states(
        seed in 0u64..10_000,
        scramble_seed in 0u64..10_000,
        n in 5usize..16,
    ) {
        let topo = random_connected_topology(seed, n, 0xAAAA_AAAA);
        for kind in [MetricKind::Hop, MetricKind::EnergyAware] {
            let mut model = SyncModel::new(topo.clone(), kind, MetricParams::default());
            let mut rng = StdRng::seed_from_u64(scramble_seed);
            model.scramble(&mut rng);
            let quiesced = settle(&mut model, 20 * n);
            if !kind.is_node_based() {
                prop_assert!(quiesced, "{kind:?} did not re-stabilize from garbage");
            }
            if quiesced {
                prop_assert!(model.tree().is_spanning(), "{kind:?} did not rebuild a spanning tree");
                prop_assert!(!model.tree().has_cycle(), "{kind:?} built a loop (count-to-infinity)");
            }
        }
    }

    /// Lemma 2 (closure): whenever the system quiesces, further rounds change nothing.
    #[test]
    fn closure_holds_after_stabilization(
        seed in 0u64..10_000,
        n in 5usize..16,
    ) {
        let topo = random_connected_topology(seed, n, 0x5555_5555);
        for kind in MetricKind::ALL {
            let mut model = SyncModel::new(topo.clone(), kind, MetricParams::default());
            let quiesced = settle(&mut model, 20 * n);
            if !kind.is_node_based() {
                prop_assert!(quiesced, "{kind:?} must quiesce");
            }
            if quiesced {
                let tree = model.tree();
                let cost = model.total_cost();
                for _ in 0..5 {
                    let report = model.round();
                    prop_assert_eq!(report.changed, 0, "closure violated for {:?}", kind);
                }
                prop_assert_eq!(model.tree(), tree);
                prop_assert!((model.total_cost() - cost).abs() < 1e-9);
            }
        }
    }

    /// The energy-aware tree never costs substantially more per delivered packet
    /// (transmissions, receptions and overhearing on the pruned tree) than the hop tree on
    /// the same topology — the paper's headline claim, stated structurally.
    #[test]
    fn energy_aware_tree_never_loses_to_the_hop_tree(
        seed in 0u64..10_000,
        n in 6usize..18,
        member_bits in 0u64..u64::MAX,
    ) {
        let topo = random_connected_topology(seed, n, member_bits);
        let params = MetricParams::default();
        let mut hop = SyncModel::new(topo.clone(), MetricKind::Hop, params);
        let mut ea = SyncModel::new(topo.clone(), MetricKind::EnergyAware, params);
        prop_assert!(settle(&mut hop, 20 * n), "the hop metric must quiesce");
        let ea_quiesced = settle(&mut ea, 20 * n);
        if ea_quiesced {
            prop_assert!(ea.tree().is_spanning());
            let hop_energy = hop.tree().per_packet_energy(&params, &topo);
            let ea_energy = ea.tree().per_packet_energy(&params, &topo);
            // The greedy, distributed SPST construction is not a global optimiser, so on an
            // individual adversarial topology the E tree can be somewhat worse than the hop
            // tree; what must never happen is a blow-up (degenerate chains, runaway
            // overhearing). The strict "E wins on the paper's example" claim is asserted in
            // crates/core/src/paper_example.rs; the averaged claim is Figure 9/16.
            prop_assert!(
                ea_energy <= hop_energy * 1.5 + 1e-12,
                "SS-SPST-E tree ({ea_energy}) blew up relative to SS-SPST ({hop_energy})"
            );
        }
    }

    /// Fault tolerance: after an arbitrary topology change (nodes re-placed), the protocol
    /// re-converges to a spanning, loop-free tree on the new topology.
    #[test]
    fn restabilizes_after_topology_change(
        seed_a in 0u64..5_000,
        seed_b in 5_000u64..10_000,
        n in 5usize..14,
    ) {
        let before = random_connected_topology(seed_a, n, 0xF0F0_F0F0);
        let after = random_connected_topology(seed_b, n, 0xF0F0_F0F0);
        let mut model = SyncModel::new(before, MetricKind::EnergyAware, MetricParams::default());
        if settle(&mut model, 20 * n) {
            prop_assert!(model.tree().is_spanning());
        }
        model.set_topology(after);
        if settle(&mut model, 20 * n) {
            prop_assert!(model.tree().is_spanning(), "did not absorb the fault");
            prop_assert!(!model.tree().has_cycle());
        }
    }
}
