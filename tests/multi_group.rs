//! Multi-session multicast acceptance suite: N concurrent groups with membership churn
//! over one shared radio medium must be (a) deterministic across thread counts and
//! neighbour-query modes, (b) per-session legitimate under churn for the
//! self-stabilizing presets (and never for structure-free flooding), and (c) exact
//! about energy: the per-group attributed energy must conserve the batteries' total.

use ssmcast::core::MetricKind;
use ssmcast::scenario::{
    run_protocol, Experiment, MobilityKind, ProtocolKind, Scenario, SweptParameter,
};
use ssmcast_manet::MediumConfig;

/// A 16-node static grid carrying three concurrent sessions with visible churn.
fn multi_group_scenario() -> Scenario {
    let mut s = Scenario::quick_test().with_mobility(MobilityKind::StaticGrid);
    s.n_nodes = 16;
    s.group_size = 6;
    s.duration_s = 60.0;
    s.n_groups = 3;
    s.member_churn_rate = 0.1;
    s
}

#[test]
fn multi_group_reports_carry_one_block_per_session() {
    let s = multi_group_scenario();
    let report =
        run_protocol(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware).to_protocol().as_ref());
    let groups = report.groups.as_ref().expect("multi-group runs carry a breakdown");
    assert_eq!(groups.len(), 3);
    for (g, block) in groups.iter().enumerate() {
        assert_eq!(block.group, g as u16);
        assert_eq!(block.source, g as u32, "session g is sourced at node g");
        assert!(block.generated > 100, "session {g} generates CBR traffic");
        assert!(block.pdr > 0.0 && block.pdr <= 1.01, "session {g} pdr={}", block.pdr);
        assert!(block.membership_events() > 0, "session {g} churned");
        assert!(block.join_overhead_bytes_per_event > 0.0, "beacons price each churn event");
    }
    // Aggregate counters are the per-session sums.
    let (gen, del): (u64, u64) =
        groups.iter().fold((0, 0), |(g, d), b| (g + b.generated, d + b.delivered));
    assert_eq!(report.generated, gen);
    assert_eq!(report.delivered, del);
}

#[test]
fn per_session_results_are_identical_across_thread_counts() {
    let build = || {
        Experiment::new(multi_group_scenario())
            .protocol_kinds(&[
                ProtocolKind::SsSpst(MetricKind::EnergyAware),
                ProtocolKind::Flooding,
            ])
            .sweep(SweptParameter::GroupCount, [1.0, 3.0])
            .reps(2)
    };
    let serial = build().threads(1).run();
    let parallel = build().threads(8).run();
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            a.reports, b.reports,
            "{} @ x={} diverged across thread counts",
            a.protocol, a.x
        );
        for r in &a.reports {
            if a.x > 1.0 {
                assert!(r.groups.is_some(), "multi-group cells carry breakdowns");
            }
        }
    }
}

#[test]
fn per_session_results_are_identical_across_neighbor_query_modes() {
    let run = |medium: MediumConfig| {
        let s = multi_group_scenario().with_medium(medium);
        run_protocol(&s, ProtocolKind::SsSpst(MetricKind::EnergyAware).to_protocol().as_ref())
    };
    let grid = run(MediumConfig::grid());
    let brute = run(MediumConfig::brute_force());
    assert_eq!(grid, brute, "grid vs brute-force must agree byte for byte, groups included");
    assert!(grid.groups.is_some());
}

#[test]
fn ss_presets_hold_per_session_legitimacy_under_churn_where_flooding_never_does() {
    let s = multi_group_scenario();
    for kind in [MetricKind::Hop, MetricKind::EnergyAware] {
        let report = run_protocol(&s, ProtocolKind::SsSpst(kind).to_protocol().as_ref());
        let groups = report.groups.as_ref().expect("breakdown");
        for (g, block) in groups.iter().enumerate() {
            let c = block.convergence.as_ref().expect("churned runs probe per-session legitimacy");
            assert!(c.epochs_probed > 50, "session {g} probed across the run");
            assert!(
                c.first_legitimate_s.is_some(),
                "{}: session {g} must build a legitimate tree",
                kind.protocol_name()
            );
            assert!(
                c.legitimacy_ratio() > 0.5,
                "{}: session {g} legitimate only {:.0}% of epochs",
                kind.protocol_name(),
                c.legitimacy_ratio() * 100.0
            );
        }
        // The aggregate block is the conjunction over sessions.
        let agg = report.convergence.as_ref().expect("aggregate convergence");
        assert!(
            agg.epochs_legitimate
                <= groups
                    .iter()
                    .map(|b| b.convergence.as_ref().unwrap().epochs_legitimate)
                    .min()
                    .unwrap()
        );
    }
    let flood = run_protocol(&s, ProtocolKind::Flooding.to_protocol().as_ref());
    for block in flood.groups.as_ref().expect("breakdown") {
        let c = block.convergence.as_ref().expect("probed");
        assert_eq!(c.epochs_legitimate, 0, "flooding maintains no rooted structure");
        assert_eq!(c.first_legitimate_s, None);
    }
}

#[test]
fn energy_is_conserved_across_sessions_sharing_the_medium() {
    for kind in
        [ProtocolKind::SsSpst(MetricKind::EnergyAware), ProtocolKind::Odmrp, ProtocolKind::Flooding]
    {
        let report = run_protocol(&multi_group_scenario(), kind.to_protocol().as_ref());
        let groups = report.groups.as_ref().expect("breakdown");
        let attributed: f64 = groups.iter().map(|b| b.energy_j).sum();
        let tolerance = 1e-9 * report.total_energy_j.max(1.0);
        assert!(
            (attributed - report.total_energy_j).abs() <= tolerance,
            "{}: per-session energy {attributed} != total {}",
            kind.name(),
            report.total_energy_j
        );
        let overhear: f64 = groups.iter().map(|b| b.overhear_energy_j).sum();
        assert!(
            (overhear - report.overhear_energy_j).abs() <= tolerance,
            "{}: overhear {overhear} != {}",
            kind.name(),
            report.overhear_energy_j
        );
        assert!(
            groups.iter().all(|b| b.energy_j > 0.0),
            "{}: every session transmits",
            kind.name()
        );
    }
}

#[test]
fn churn_alone_turns_on_the_breakdown_and_probe_for_a_single_group() {
    let mut s = Scenario::quick_test().with_mobility(MobilityKind::StaticGrid);
    s.n_nodes = 16;
    s.group_size = 6;
    s.duration_s = 60.0;
    s.member_churn_rate = 0.2;
    let report = run_protocol(&s, ProtocolKind::SsSpst(MetricKind::Hop).to_protocol().as_ref());
    let groups = report.groups.as_ref().expect("churned single-group runs carry a breakdown");
    assert_eq!(groups.len(), 1);
    assert!(groups[0].membership_events() > 0);
    assert!(report.convergence.is_some(), "churn engages the legitimacy probe");
    // Expected deliveries track the evolving membership, not the initial size.
    assert!(report.expected_deliveries > 0);
}

#[test]
fn group_count_sweep_runs_end_to_end_with_csv_columns() {
    use ssmcast::scenario::CsvStreamSink;
    let mut base = multi_group_scenario();
    base.duration_s = 30.0;
    let mut csv = CsvStreamSink::new(Vec::new());
    Experiment::new(base)
        .protocol_kinds(&[ProtocolKind::Flooding])
        .sweep(SweptParameter::GroupCount, [1.0, 2.0])
        .run_with_sink(&mut csv);
    let text = String::from_utf8(csv.into_inner()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "header + two columns");
    assert!(lines[0].ends_with("groups,joins,leaves"));
    let cols: Vec<&str> = lines[1].split(',').collect();
    let one_group: u64 = cols[cols.len() - 3].parse().unwrap();
    assert_eq!(one_group, 1);
    let cols: Vec<&str> = lines[2].split(',').collect();
    let two_groups: u64 = cols[cols.len() - 3].parse().unwrap();
    assert_eq!(two_groups, 2);
}
