//! End-to-end integration tests: the full event-driven stack (dessim + manet + protocol
//! agents + scenario harness) on small but realistic scenarios.

use ssmcast::core::{MetricKind, MetricParams, SsSpstAgent, SsSpstConfig};
use ssmcast::dessim::{SeedSequence, SimDuration, SimTime};
use ssmcast::manet::{
    BoxedMobility, FaultPlan, GroupRole, MediumConfig, NetworkSim, NodeId, RadioConfig, SimSetup,
    Stationary, TrafficConfig, Vec2,
};
use ssmcast::scenario::{
    run_figure, run_protocol, FigureId, Metric, ProtocolKind, ProtocolRegistry, Scenario,
};

/// A stationary 3×3 grid with 150 m spacing and 250 m range: fully connected, no mobility,
/// so a correct proactive protocol should deliver essentially every packet.
fn grid_setup(kind_members: &[GroupRole]) -> (SimSetup, Vec<BoxedMobility>) {
    let n = kind_members.len();
    assert_eq!(n, 9);
    let mobility: Vec<BoxedMobility> = (0..9)
        .map(|i| {
            let x = (i % 3) as f64 * 150.0;
            let y = (i / 3) as f64 * 150.0;
            Box::new(Stationary::new(Vec2::new(x, y))) as BoxedMobility
        })
        .collect();
    let radio = RadioConfig { loss_probability: 0.0, ..RadioConfig::default() };
    let traffic = TrafficConfig {
        group: Default::default(),
        source: NodeId(0),
        data_rate_bps: 64_000.0,
        packet_size_bytes: 512,
        start: SimTime::from_secs(10),
        stop: SimTime::from_secs(70),
    };
    let setup = SimSetup::single(
        radio,
        traffic,
        kind_members.to_vec(),
        f64::INFINITY,
        SimDuration::from_secs(1),
        0.95,
        SeedSequence::new(2024),
        MediumConfig::default(),
        FaultPlan::new(),
    );
    (setup, mobility)
}

#[test]
fn ss_spst_e_delivers_nearly_everything_on_a_static_grid() {
    let roles = [
        GroupRole::Source,
        GroupRole::NonMember,
        GroupRole::Member,
        GroupRole::NonMember,
        GroupRole::NonMember,
        GroupRole::NonMember,
        GroupRole::Member,
        GroupRole::NonMember,
        GroupRole::Member,
    ];
    let (setup, mobility) = grid_setup(&roles);
    let agents = (0..9)
        .map(|_| SsSpstAgent::new(SsSpstConfig::paper_default(MetricKind::EnergyAware)))
        .collect();
    let mut sim = NetworkSim::new(setup, mobility, agents);
    let report = sim.run(SimDuration::from_secs(80));
    assert!(report.generated > 800);
    assert!(
        report.pdr > 0.95,
        "a static, lossless grid should deliver almost everything; pdr = {}",
        report.pdr
    );
    assert!(report.avg_delay_ms > 0.0 && report.avg_delay_ms < 200.0);
    assert!(report.control_bytes > 0, "beacons must be accounted as control traffic");
    assert!(report.energy_per_delivered_mj > 0.0);
}

#[test]
fn all_ss_variants_build_working_trees_on_the_static_grid() {
    for kind in MetricKind::ALL {
        let roles = [
            GroupRole::Source,
            GroupRole::NonMember,
            GroupRole::Member,
            GroupRole::NonMember,
            GroupRole::NonMember,
            GroupRole::NonMember,
            GroupRole::Member,
            GroupRole::NonMember,
            GroupRole::Member,
        ];
        let (setup, mobility) = grid_setup(&roles);
        let config =
            SsSpstConfig { params: MetricParams::default(), ..SsSpstConfig::paper_default(kind) };
        let agents = (0..9).map(|_| SsSpstAgent::new(config)).collect();
        let mut sim = NetworkSim::new(setup, mobility, agents);
        let report = sim.run(SimDuration::from_secs(80));
        assert!(
            report.pdr > 0.9,
            "{} should deliver on a static grid, got {}",
            kind.protocol_name(),
            report.pdr
        );
        // The stabilized agents must agree on a loop-free structure: follow parents from
        // every node and confirm the walk reaches the source.
        for i in 1..9u32 {
            let mut cur = NodeId(i);
            let mut hops = 0;
            while let Some(p) = sim.agent(cur).parent() {
                cur = p;
                hops += 1;
                assert!(hops <= 9, "{}: parent pointers loop", kind.protocol_name());
            }
            assert_eq!(cur, NodeId(0), "{}: node {i} is detached", kind.protocol_name());
        }
    }
}

#[test]
fn mobile_scenario_sanity_for_all_protocols() {
    let mut s = Scenario::quick_test();
    s.duration_s = 45.0;
    s.n_nodes = 20;
    s.group_size = 8;
    s.max_speed_mps = 5.0;
    let registry = ProtocolRegistry::with_builtins();
    let mut reports = Vec::new();
    for name in ["SS-SPST", "SS-SPST-E", "MAODV", "ODMRP"] {
        let protocol = registry.lookup(name).expect("built-in protocol");
        let r = run_protocol(&s, protocol.as_ref());
        assert!(r.pdr > 0.05, "{name} delivered essentially nothing");
        assert!(r.pdr <= 1.0);
        assert!(r.total_energy_j > 0.0);
        assert!(r.control_bytes > 0, "{name} sent no control traffic");
        reports.push(r);
    }
    // Proactive beaconing vs on-demand: the SS-SPST family keeps sending control traffic
    // regardless of data, so over a short run its control volume exceeds MAODV's.
    let ss = &reports[0];
    let maodv = &reports[2];
    assert!(ss.control_packets > maodv.control_packets);
}

#[test]
fn figure_presets_produce_complete_series_at_smoke_scale() {
    // A tiny-scale pass over one velocity figure and one group-size figure: checks the
    // sweep plumbing end to end (cells × protocols × series) rather than the numbers.
    for id in [FigureId::Fig7, FigureId::Fig13] {
        let result = run_figure(id, 0.2, 1);
        let spec = &result.spec;
        assert_eq!(result.series.len(), spec.protocols.len());
        for series in &result.series {
            assert_eq!(series.points.len(), spec.xs.len(), "{}: missing points", series.label);
        }
        assert_eq!(result.cells.len(), spec.xs.len() * spec.protocols.len());
        assert!(result.cells.iter().all(|c| c.reports.len() == 1));
    }
}

#[test]
fn unavailability_mirrors_pdr_in_reports() {
    let mut s = Scenario::quick_test();
    s.duration_s = 40.0;
    s.n_nodes = 20;
    s.group_size = 8;
    let flooding = ProtocolKind::Flooding.to_protocol();
    let good = run_protocol(&s, flooding.as_ref());
    // Cripple the channel to force losses and compare.
    let mut bad_scenario = s;
    bad_scenario.radio.loss_probability = 0.6;
    let bad = run_protocol(&bad_scenario, flooding.as_ref());
    assert!(good.pdr > bad.pdr);
    assert!(
        good.unavailability_ratio <= bad.unavailability_ratio,
        "lower PDR must not come with lower unavailability ({} vs {})",
        good.unavailability_ratio,
        bad.unavailability_ratio
    );
    assert_eq!(Metric::Pdr.extract(&good), good.pdr);
}
