//! Seeded-determinism guarantees of the radio medium layer: the grid-indexed broadcast
//! path must reproduce the brute-force scan *byte for byte* for the same seeds, because
//! both modes share one epoch-cached position buffer, the same `distance² ≤ r²`
//! neighbour predicate, and NodeId-sorted receiver iteration (so every `loss_rng` draw
//! lands on the same receiver in the same order).

use ssmcast::dessim::SimDuration;
use ssmcast::manet::{MediumConfig, SimReport};
use ssmcast::scenario::{run_protocol, MobilityKind, ProtocolKind, Scenario};

fn run_with(base: &Scenario, medium: MediumConfig, kind: ProtocolKind) -> SimReport {
    let mut s = *base;
    s.medium = medium;
    run_protocol(&s, kind.to_protocol().as_ref())
}

/// The acceptance scenario: a preset (quick-test) mobile scenario, several protocols,
/// identical reports for grid vs brute force.
#[test]
fn grid_and_brute_force_paths_produce_identical_reports() {
    let mut s = Scenario::quick_test();
    s.duration_s = 40.0;
    for kind in [
        ProtocolKind::Flooding,
        ProtocolKind::SsSpst(ssmcast::core::MetricKind::EnergyAware),
        ProtocolKind::Odmrp,
    ] {
        let grid = run_with(&s, MediumConfig::grid(), kind);
        let brute = run_with(&s, MediumConfig::brute_force(), kind);
        assert!(grid.generated > 100, "{}: CBR must generate traffic", kind.name());
        assert_eq!(grid, brute, "{}: query mode changed a seeded result", kind.name());
    }
}

/// The epoch knob changes physics (positions quantise to epoch starts) but never breaks
/// the cross-mode guarantee: for any epoch, grid and brute force still agree exactly.
#[test]
fn epoch_cached_positions_keep_query_modes_in_lockstep() {
    let mut s = Scenario::quick_test();
    s.duration_s = 40.0;
    s.max_speed_mps = 10.0;
    let kind = ProtocolKind::Flooding;
    for epoch_ms in [50u64, 250, 1_000] {
        let epoch = SimDuration::from_millis(epoch_ms);
        let grid = run_with(&s, MediumConfig::grid().with_epoch(epoch), kind);
        let brute = run_with(&s, MediumConfig::brute_force().with_epoch(epoch), kind);
        assert_eq!(grid, brute, "epoch {epoch_ms} ms: query mode changed a seeded result");
    }
}

/// The guarantee holds across mobility plugins (waypoint, Gauss–Markov, static grid),
/// since all of them are read through the same position cache.
#[test]
fn every_mobility_kind_agrees_across_query_modes() {
    let mut s = Scenario::quick_test();
    s.duration_s = 30.0;
    s.n_nodes = 20;
    s.group_size = 8;
    for mobility in MobilityKind::ALL {
        let base = s.with_mobility(mobility);
        let grid = run_with(&base, MediumConfig::grid(), ProtocolKind::Flooding);
        let brute = run_with(&base, MediumConfig::brute_force(), ProtocolKind::Flooding);
        assert_eq!(grid, brute, "{}: query mode changed a seeded result", mobility.name());
    }
}
