//! Regression guard: a single-group scenario's `SimReport` must serialize byte-for-byte
//! identically to the pre-multi-group build (golden file captured before the refactor).

use ssmcast::core::MetricKind;
use ssmcast::scenario::{run_protocol, ProtocolKind, Scenario};

fn golden_scenario() -> Scenario {
    let mut s = Scenario::quick_test();
    s.duration_s = 40.0;
    s.n_nodes = 16;
    s.group_size = 6;
    s
}

fn rendered() -> String {
    let s = golden_scenario();
    let mut out = String::new();
    for kind in
        [ProtocolKind::Flooding, ProtocolKind::SsSpst(MetricKind::EnergyAware), ProtocolKind::Odmrp]
    {
        let report = run_protocol(&s, kind.to_protocol().as_ref());
        out.push_str(&serde_json::to_string(&report).expect("reports serialize"));
        out.push('\n');
    }
    out
}

#[test]
fn single_group_reports_match_the_pre_refactor_golden_bytes() {
    let golden = include_str!("golden/single_group_reports.jsonl");
    let now = rendered();
    for (i, (g, n)) in golden.lines().zip(now.lines()).enumerate() {
        assert_eq!(g, n, "report line {i} diverged from the pre-refactor golden bytes");
    }
    assert_eq!(golden, now);
    // The energy-lifecycle blocks must serialize as entirely absent — not null — on
    // these unlimited-battery, duty-cycle-off runs (as must the per-group blocks).
    assert!(!now.contains("\"lifetime\""), "lifetime block leaked into a lifecycle-off run");
    assert!(!now.contains("\"groups\""));
    // Likewise for the MAC layer: the default random-jitter policy must not attach a
    // stats block, keeping pre-MAC reports byte-identical.
    assert!(!now.contains("\"mac\""), "MacStats block leaked into a default-policy run");
    // And for the engine: the default sequential loop with stats off must not attach an
    // EngineStats block — the pre-sharding golden bytes are the contract.
    assert!(!now.contains("\"engine\""), "EngineStats block leaked into a default-engine run");
    // Beacon suppression defaults to off, and off means *absent*: no silence block, no
    // phase-split counters, byte-identical reports.
    assert!(!now.contains("\"silence\""), "SilenceStats block leaked into a suppression-off run");
    // Metrics default to `Exact`, and exact means *absent*: no streaming-sketch summary
    // on a default run, keeping pre-streaming reports byte-identical.
    assert!(!now.contains("\"streaming\""), "StreamingStats block leaked into an exact-mode run");
}

/// Regenerate the golden file (run manually: `GOLDEN_WRITE=1 cargo test --test
/// golden_single_group -- --ignored golden_write`).
#[test]
#[ignore]
fn golden_write() {
    if std::env::var("GOLDEN_WRITE").is_ok() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/single_group_reports.jsonl"),
            rendered(),
        )
        .unwrap();
    }
}
