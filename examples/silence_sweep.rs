//! The silent-stabilization figure: sweep the beacon-suppression backoff cap on a
//! static, fault-free topology and chart the steady-state control bytes each
//! self-stabilizing tree protocol still spends once its legitimacy predicate holds.
//! At cap 1 suppression is accounting-only (the always-on baseline); raising the cap
//! lets quiet nodes back off toward the heartbeat floor, so the steady-state bytes
//! should collapse while the recovery split — printed alongside — stays protocol
//! repair traffic only.
//!
//! Run with `cargo run --release --example silence_sweep`. `SSMCAST_SCALE` /
//! `SSMCAST_REPS` work as in the other examples (see EXPERIMENTS.md).

use ssmcast::scenario::{figure_to_text, run_figure_with_sink, FigureId, ProgressSink};

fn main() {
    let scale: f64 =
        std::env::var("SSMCAST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let reps: usize = std::env::var("SSMCAST_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
    let mut progress = ProgressSink::stderr();
    let result = run_figure_with_sink(FigureId::FigSilence, scale, reps, &mut progress);
    println!("{}", figure_to_text(&result));

    // Companion view: the phase split behind the headline metric. Steady bytes fall
    // with the cap; recovery bytes (tree construction after cold start) do not grow.
    println!("# Control-byte phase split (steady / recovery, averaged over reps)");
    for cell in &result.cells {
        let (mut steady, mut recovery, mut runs) = (0u64, 0u64, 0u64);
        for report in &cell.reports {
            if let Some(silence) = &report.silence {
                steady += silence.steady_control_bytes;
                recovery += silence.recovery_control_bytes;
                runs += 1;
            }
        }
        if let Some(per_run_steady) = steady.checked_div(runs) {
            println!(
                "cap {:>5.1}  {:<10}  steady {:>10}  recovery {:>10}",
                cell.x,
                cell.protocol,
                per_run_steady,
                recovery / runs.max(1)
            );
        }
    }
}
