//! The MAC-layer workload: offered load × medium-access policy. For each of the three
//! channel-access disciplines — the legacy blind jitter, carrier-sense CSMA with
//! exponential backoff, and Leone & Schiller-style self-stabilizing TDMA — sweep the
//! CBR source rate and chart how collision rate, delivery ratio, access delay and
//! (for TDMA) slot-convergence time respond. The same protocol stack runs above all
//! three, so every difference is the MAC's doing.
//!
//! Also prints the `FigMac` preset (collision rate per policy for the paper's four
//! protocols at doubled load).
//!
//! Run with `cargo run --release --example mac_sweep`. `SSMCAST_SCALE` / `SSMCAST_REPS`
//! work as in the other examples (see EXPERIMENTS.md).

use ssmcast::core::MetricKind;
use ssmcast::scenario::{
    base_scenario_for, figure_to_text, run_figure_with_sink, Experiment, FigureId, MacConfig,
    ProgressSink, ProtocolKind, Scenario, SweptParameter,
};

fn main() {
    let scale: f64 =
        std::env::var("SSMCAST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.3);
    let reps: usize = std::env::var("SSMCAST_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(1);

    // Part 1 — offered load × MAC policy, one protocol above all three. The x axis is
    // the source rate in kbit/s; every policy faces the identical seeded world.
    let loads = [32.0, 64.0, 128.0, 256.0];
    let policies: [(&str, MacConfig); 3] = [
        ("random-jitter", MacConfig::default().with_stats()),
        ("csma", MacConfig::csma()),
        ("ss-tdma", MacConfig::ss_tdma()),
    ];
    let mut base = base_scenario_for(&FigureId::FigMac.spec());
    base.duration_s = (Scenario::paper_default().duration_s * scale).max(30.0);
    println!("# Offered load sweep (SS-SPST, {} s per run, {} rep(s))", base.duration_s, reps);
    println!(
        "{:>14} {:>10} {:>12} {:>8} {:>12} {:>10} {:>12}",
        "policy", "load kbps", "collisions", "pdr", "drop ratio", "delay ms", "converged s"
    );
    for (label, mac) in policies {
        let cells = Experiment::new(base.with_mac(mac))
            .protocol_kinds(&[ProtocolKind::SsSpst(MetricKind::Hop)])
            .sweep(SweptParameter::TrafficLoad, loads)
            .reps(reps)
            .run();
        for cell in &cells {
            let Some(report) = cell.reports.first() else { continue };
            let Some(m) = &report.mac else { continue };
            let converged =
                m.slot_last_redraw_s.map(|s| format!("{s:.1}")).unwrap_or_else(|| "-".to_string());
            println!(
                "{:>14} {:>10} {:>12.4} {:>8.3} {:>12.4} {:>10.2} {:>12}",
                label,
                cell.x,
                m.collision_rate,
                report.pdr,
                m.drop_ratio(),
                m.mean_access_delay_ms,
                converged,
            );
        }
    }

    // Part 2 — the FigMac preset: collision rate per policy for the paper's four
    // protocols, streamed with progress lines like the other figure examples.
    let mut progress = ProgressSink::stderr();
    let result = run_figure_with_sink(FigureId::FigMac, scale, reps, &mut progress);
    println!("\n{}", figure_to_text(&result));
}
