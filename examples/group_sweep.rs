//! The multi-group workload: sweep the number of concurrent multicast sessions sharing
//! one radio medium (each with a seeded membership-churn schedule) and compare how the
//! four headline protocols hold up. More sessions mean more contention and more
//! overhearing; churn means every session keeps absorbing joins and leaves while data
//! flows. The per-group blocks streamed into the CSV/JSONL output break every cell down
//! by session — including per-session legitimacy measured by the stabilization probe.
//!
//! Run with `cargo run --release --example group_sweep`. `SSMCAST_SCALE` / `SSMCAST_REPS`
//! work as in the other examples (see EXPERIMENTS.md).

use ssmcast::scenario::{figure_to_text, run_figure_with_sink, FigureId, ProgressSink};

fn main() {
    let scale: f64 =
        std::env::var("SSMCAST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.3);
    let reps: usize = std::env::var("SSMCAST_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let mut progress = ProgressSink::stderr();
    let result = run_figure_with_sink(FigureId::FigGroups, scale, reps, &mut progress);
    println!("{}", figure_to_text(&result));

    // Companion view: the per-session breakdown of the largest cell — who paid what on
    // the shared medium. Energy is attributed per session and conserves the total.
    println!("# Per-session breakdown (x = max sessions, first repetition)");
    for cell in result.cells.iter().rev().take(result.spec.protocols.len()) {
        let Some(report) = cell.reports.first() else { continue };
        let Some(groups) = &report.groups else { continue };
        println!("{} @ {} sessions:", cell.protocol, cell.x);
        for g in groups {
            let legit = g
                .convergence
                .as_ref()
                .map(|c| format!("{:.0}% legitimate", c.legitimacy_ratio() * 100.0))
                .unwrap_or_else(|| "unprobed".to_string());
            println!(
                "  group {} (source n{}): pdr={:.3} members {}→{} joins={} leaves={} \
                 energy={:.2} J ({legit})",
                g.group,
                g.source,
                g.pdr,
                g.members_initial,
                g.members_final,
                g.joins,
                g.leaves,
                g.energy_j,
            );
        }
        let attributed: f64 = groups.iter().map(|g| g.energy_j).sum();
        println!(
            "  medium total {:.2} J, attributed to sessions {:.2} J",
            report.total_energy_j, attributed
        );
    }
}
