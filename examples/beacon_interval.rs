//! Figures 10 and 11: the beacon-interval trade-off. Short intervals detect faults faster
//! (better delivery ratio) but cost more control energy; the paper finds the sweet spot
//! around 2 s. Cell-by-cell progress streams to stderr while the sweep runs.
//!
//! Run with `cargo run --release --example beacon_interval`.

use ssmcast::scenario::{figure_to_text, run_figure_with_sink, FigureId, ProgressSink};

fn main() {
    let scale: f64 =
        std::env::var("SSMCAST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let reps: usize = std::env::var("SSMCAST_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
    for id in [FigureId::Fig10, FigureId::Fig11] {
        let mut progress = ProgressSink::stderr();
        let result = run_figure_with_sink(id, scale, reps, &mut progress);
        println!("{}", figure_to_text(&result));
    }
}
