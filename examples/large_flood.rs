//! Scaling demonstration: flooding at n = 500 under the radio medium layer.
//!
//! Runs the same large flooding scenario twice — once with the brute-force O(n) receiver
//! scan and once with the grid-indexed O(k) path — and prints wall-clock time and
//! events/sec for each, plus the (identical) delivery statistics. Reproduces the perf
//! claim from the command line:
//!
//! ```text
//! cargo run --release --example large_flood
//! ```

use std::time::Instant;

use ssmcast::baselines::FloodingAgent;
use ssmcast::dessim::{SeedSequence, SimDuration};
use ssmcast::manet::{MediumConfig, NetworkSim};
use ssmcast::scenario::{build_mobility, build_setup, Scenario};

/// 1200 nodes over a 4.2 km × 4.2 km field (≈ 13 neighbours per node at 250 m range), a
/// short CBR burst, blind flooding — the broadcast-heavy worst case for the medium layer.
fn large_scenario() -> Scenario {
    let mut s = Scenario::paper_default();
    s.n_nodes = 1_200;
    s.area_side_m = 4_200.0;
    s.group_size = 50;
    s.duration_s = 3.0;
    s.warmup_s = 0.5;
    s.max_speed_mps = 10.0;
    // Cache positions per 200 ms epoch: both runs below share this quantisation, so
    // their physics — and their reports — are identical; only the query cost differs.
    s.medium = MediumConfig::grid().with_epoch(SimDuration::from_millis(200));
    s
}

fn run_once(label: &str, medium: MediumConfig) -> (u64, f64) {
    let mut s = large_scenario();
    s.medium = medium;
    let seeds = SeedSequence::new(s.seed);
    let setup = build_setup(&s, seeds);
    let mobility = build_mobility(&s, &seeds);
    let agents = (0..s.n_nodes).map(|_| FloodingAgent::new()).collect();
    let mut sim = NetworkSim::new(setup, mobility, agents);
    let start = Instant::now();
    let report = sim.run(SimDuration::from_secs_f64(s.duration_s));
    let wall = start.elapsed();
    let events = sim.events_processed();
    let rate = events as f64 / wall.as_secs_f64();
    println!(
        "{label:<22} {events:>9} events in {:>8.1?}  →  {rate:>10.0} events/s   \
         (generated {}, pdr {:.3})",
        wall, report.generated, report.pdr
    );
    (events, rate)
}

fn main() {
    let s = large_scenario();
    println!(
        "flooding, n = {}, {:.0} m field, {:.0} s simulated, position epoch {}",
        s.n_nodes, s.area_side_m, s.duration_s, s.medium.position_epoch
    );
    let epoch = s.medium.position_epoch;
    let (ev_brute, rate_brute) =
        run_once("brute-force scan", MediumConfig::brute_force().with_epoch(epoch));
    let (ev_grid, rate_grid) =
        run_once("grid spatial index", MediumConfig::grid().with_epoch(epoch));
    assert_eq!(ev_brute, ev_grid, "query modes must process identical event streams");
    println!("speedup: {:.2}x", rate_grid / rate_brute);
}
