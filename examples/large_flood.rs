//! Scaling demonstration: blind flooding at large n, sequential and sharded.
//!
//! With no arguments, runs the legacy n = 1200 comparison — the same scenario once with
//! the brute-force O(n) receiver scan and once with the grid-indexed O(k) path — and
//! prints wall-clock time and events/sec for each, plus the (identical) delivery
//! statistics:
//!
//! ```text
//! cargo run --release --example large_flood
//! ```
//!
//! With arguments, runs the flood at a chosen node count under one or more engine
//! configurations (`0` = the sequential engine, `k > 0` = the region-sharded engine with
//! `k` worker threads) and prints the speedup of every later run over the first:
//!
//! ```text
//! cargo run --release --example large_flood -- 20000 0 8    # n=20k, sequential vs 8 shards
//! cargo run --release --example large_flood -- 100000 8     # n=100k on 8 shards
//! ```
//!
//! The field is scaled with √n to hold node density (≈ 13 neighbours at 250 m range)
//! constant, so per-node work stays comparable across n.

use std::time::Instant;

use ssmcast::baselines::FloodingAgent;
use ssmcast::dessim::{SeedSequence, SimDuration};
use ssmcast::manet::{MediumConfig, NetworkSim};
use ssmcast::scenario::{build_mobility, build_setup, Scenario};

/// 1200 nodes over a 4.2 km × 4.2 km field (≈ 13 neighbours per node at 250 m range), a
/// short CBR burst, blind flooding — the broadcast-heavy worst case for the medium layer.
fn large_scenario() -> Scenario {
    let mut s = Scenario::paper_default();
    s.n_nodes = 1_200;
    s.area_side_m = 4_200.0;
    s.group_size = 50;
    s.duration_s = 3.0;
    s.warmup_s = 0.5;
    s.max_speed_mps = 10.0;
    // Cache positions per 200 ms epoch: both runs below share this quantisation, so
    // their physics — and their reports — are identical; only the query cost differs.
    s.medium = MediumConfig::grid().with_epoch(SimDuration::from_millis(200));
    s
}

/// The same flood at `n` nodes: field scaled with √n for constant density, simulated
/// time shortened at very large n so the n = 100k configuration finishes in minutes.
fn scaled_scenario(n: usize) -> Scenario {
    let mut s = large_scenario();
    s.n_nodes = n;
    s.area_side_m = 4_200.0 * (n as f64 / 1_200.0).sqrt();
    if n >= 50_000 {
        s.duration_s = 1.0;
        s.warmup_s = 0.2;
    }
    s
}

fn run_once(s: &Scenario, label: &str) -> (u64, f64) {
    let seeds = SeedSequence::new(s.seed);
    let setup = build_setup(s, seeds);
    let mobility = build_mobility(s, &seeds);
    let agents = (0..s.n_nodes).map(|_| FloodingAgent::new()).collect();
    let mut sim = NetworkSim::new(setup, mobility, agents);
    let start = Instant::now();
    let report = sim.run(SimDuration::from_secs_f64(s.duration_s));
    let wall = start.elapsed();
    let engine = report.engine.as_ref().expect("stats-on run attaches an engine block");
    let events = engine.events_processed;
    let rate = events as f64 / wall.as_secs_f64();
    println!(
        "{label:<22} {events:>10} events in {:>8.1?}  →  {rate:>10.0} events/s   \
         (generated {}, pdr {:.3})",
        wall, report.generated, report.pdr
    );
    (events, wall.as_secs_f64())
}

/// Legacy mode: brute-force vs grid receiver queries on the sequential engine.
fn query_mode_comparison() {
    let s = large_scenario();
    println!(
        "flooding, n = {}, {:.0} m field, {:.0} s simulated, position epoch {}",
        s.n_nodes, s.area_side_m, s.duration_s, s.medium.position_epoch
    );
    let epoch = s.medium.position_epoch;
    let mut brute = s;
    brute.medium = MediumConfig::brute_force().with_epoch(epoch);
    brute.engine = brute.engine.with_stats();
    let (ev_brute, wall_brute) = run_once(&brute, "brute-force scan");
    let mut grid = s;
    grid.medium = MediumConfig::grid().with_epoch(epoch);
    grid.engine = grid.engine.with_stats();
    let (ev_grid, wall_grid) = run_once(&grid, "grid spatial index");
    assert_eq!(ev_brute, ev_grid, "query modes must process identical event streams");
    println!("speedup: {:.2}x", wall_brute / wall_grid);
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().unwrap_or_else(|_| panic!("expected an integer, got {a:?}")))
        .collect();
    let Some((&n, rest)) = args.split_first() else {
        query_mode_comparison();
        return;
    };
    let shard_counts: Vec<usize> = if rest.is_empty() { vec![0, 8] } else { rest.to_vec() };
    let s = scaled_scenario(n);
    println!(
        "flooding, n = {}, {:.0} m field, {:.1} s simulated",
        s.n_nodes, s.area_side_m, s.duration_s
    );
    let mut first_wall: Option<f64> = None;
    for &k in &shard_counts {
        let label = if k == 0 { "sequential".to_string() } else { format!("{k} shards") };
        let mut run = s;
        if k > 0 {
            run = run.with_shards(k as u32);
        }
        run.engine = run.engine.with_stats();
        let (_, wall) = run_once(&run, &label);
        match first_wall {
            None => first_wall = Some(wall),
            Some(base) => println!("{:<22} {:.2}x vs the first run", "  speedup", base / wall),
        }
    }
}
