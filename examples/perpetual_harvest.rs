//! Perpetual operation: a week of simulated time at n = 10 000 in bounded memory.
//!
//! Every node runs on a small battery with a continuous idle-listen drain, so the
//! whole fleet would be dead within the first few simulated hours — but each node also
//! harvests energy from its environment at a seeded per-node rate and, once depleted,
//! sits dark until it has banked a quarter of its capacity (harvest-until-threshold),
//! then wakes and rejoins the multicast. The network settles into a sustainable duty
//! cycle: the question stops being "when does the first node die" and becomes "what
//! delivery ratio does the harvest income sustain" — the regime the streaming metrics
//! mode exists for.
//!
//! Report accumulation runs in `Streaming` mode: fixed-bin latency histograms, bounded
//! delivery-window ledgers and downsampling curve rings hold the report layer at a
//! configured footprint regardless of horizon, where exact mode's per-packet maps and
//! per-epoch curves would grow with the week. The example prints the process peak RSS
//! (`/proc/self/status` VmHWM) so the bound is a measured number, not a promise
//! (EXPERIMENTS.md records the reference run).
//!
//! Run with `cargo run --release --example perpetual_harvest`. `SSMCAST_SCALE` shrinks
//! the fleet and the horizon together for smoke runs (CI uses 0.2); at full scale the
//! run simulates 7 × 24 h at n = 10k in a few minutes of wall time.

use std::time::Instant;

use ssmcast::baselines::FloodingAgent;
use ssmcast::dessim::{SeedSequence, SimDuration};
use ssmcast::manet::{HarvestConfig, MediumConfig, NetworkSim, NodeId};
use ssmcast::scenario::{build_mobility, build_setup, MetricsConfig, MobilityKind, Scenario};

const WEEK_S: f64 = 7.0 * 24.0 * 3600.0;

/// Peak resident set size so far, bytes (`/proc/self/status` VmHWM; Linux only).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn scenario(scale: f64) -> Scenario {
    let mut s = Scenario::paper_default();
    s.n_nodes = ((10_000.0 * scale) as usize).max(100);
    // Field scaled with √n keeps ≈ 13 neighbours per node at 250 m range.
    s.area_side_m = 4_200.0 * (s.n_nodes as f64 / 1_200.0).sqrt();
    s.group_size = 50;
    // The horizon shrinks with scale² so smoke runs stay cheap in events, not just
    // in nodes; full scale is a calendar week of simulated time.
    s.duration_s = WEEK_S * scale * scale;
    s.warmup_s = 30.0;
    // One 512-byte packet every ~300 s: perpetual telemetry, not a saturating flood.
    s.data_rate_bps = 512.0 * 8.0 / 300.0;
    s.mobility = MobilityKind::StaticGrid;
    s.medium = MediumConfig::grid().with_epoch(SimDuration::from_millis(500));
    // 5 J batteries with a 1 mW idle-listen floor: ~5000 s from full to dark. Nodes
    // harvest 0.5–2 mW and wake after banking 25% of capacity, so each settles into
    // an individual awake/dark duty cycle of roughly an hour.
    let s = s.with_battery_capacity(5.0).with_idle_power(1e-3, 0.0);
    let mut s = s.with_harvest(HarvestConfig::on(0.5e-3, 2.0e-3, 0.25));
    s.lifecycle.sample_epoch = SimDuration::from_secs(60);
    // The point of the exercise: memory-bounded report accumulation.
    s.with_metrics(MetricsConfig::streaming())
}

fn main() {
    let scale: f64 =
        std::env::var("SSMCAST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let s = scenario(scale);
    println!(
        "perpetual harvest: n = {}, {:.1} h simulated, battery {} J, streaming metrics",
        s.n_nodes,
        s.duration_s / 3600.0,
        s.battery_capacity_j,
    );
    let seeds = SeedSequence::new(s.seed);
    let setup = build_setup(&s, seeds);
    let mobility = build_mobility(&s, &seeds);
    let agents = (0..s.n_nodes).map(|_| FloodingAgent::new()).collect();
    let mut sim = NetworkSim::new(setup, mobility, agents);
    let start = Instant::now();
    let report = sim.run(SimDuration::from_secs_f64(s.duration_s));
    let wall = start.elapsed();

    let harvested: f64 = (0..s.n_nodes).map(|i| sim.battery(NodeId(i as u32)).harvested()).sum();
    println!(
        "done in {wall:.1?}: generated {}, delivered {} (pdr {:.3}), mean delay {:.2} ms",
        report.generated, report.delivered, report.pdr, report.avg_delay_ms
    );
    println!(
        "energy: {:.1} J consumed, {:.1} J harvested back across the fleet",
        report.total_energy_j, harvested
    );
    if let Some(lifetime) = &report.lifetime {
        println!(
            "lifetime: first depletion at {} s, {} of {} nodes awake at the horizon, \
             {} curve points (epoch {:.0} s after downsampling)",
            lifetime.first_death_s.map(|t| format!("{t:.0}")).unwrap_or_else(|| "—".into()),
            lifetime.alive_final,
            s.n_nodes,
            lifetime.alive_curve.len(),
            lifetime.sample_epoch_s,
        );
    }
    if let Some(streaming) = &report.streaming {
        println!(
            "report layer: {} bytes of sketch state (p50 {:.2} ms, p95 {:.2} ms, \
             window ledger level {} holding {} blocks)",
            streaming.report_bytes,
            streaming.latency_p50_ms,
            streaming.latency_p95_ms,
            streaming.window_level,
            streaming.window_blocks,
        );
    }
    match peak_rss_bytes() {
        Some(rss) => println!("peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0)),
        None => println!("peak RSS: unavailable on this platform"),
    }
}
