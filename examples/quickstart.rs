//! Quickstart: build an energy-aware self-stabilizing multicast tree on the paper's
//! Figure-1 topology, then run the same protocol inside the full MANET simulator via the
//! protocol registry.
//!
//! Run with `cargo run --release --example quickstart`.

use ssmcast::core::{figure1_topology, MetricKind, MetricParams, SyncModel};
use ssmcast::manet::NodeId;
use ssmcast::scenario::{run_protocol, ProtocolRegistry, Scenario};

fn main() {
    // --- Part 1: the abstract, round-based view (what the paper's examples show) --------
    let topo = figure1_topology();
    let params = MetricParams::default();
    let mut model = SyncModel::new(topo.clone(), MetricKind::EnergyAware, params);
    let rounds = model.run_to_stabilization(100).expect("the example topology stabilizes");
    let tree = model.tree();

    println!("SS-SPST-E on the paper's Figure-1 topology");
    println!("  stabilized in {rounds} rounds");
    println!("  tree edges (parent -> child, distance):");
    for (p, c, d) in tree.edges(&topo) {
        println!("    {p:>2} -> {c:<2}  {:>7.2} m", d.unwrap_or(f64::NAN));
    }
    println!(
        "  per-packet network energy: {:.3} mJ (tree cost under the E metric: {:.3} mJ)",
        tree.per_packet_energy(&params, &topo) * 1e3,
        tree.total_cost(MetricKind::EnergyAware, &params, &topo) * 1e3
    );
    println!(
        "  node 3's parent: {:?} (the hop-count tree would attach it straight to the source)",
        tree.parent(NodeId(3))
    );

    // --- Part 2: the same protocol in the event-driven simulator ------------------------
    // Protocols are looked up by their figure-legend name in the registry; anything
    // registered there (including your own `Protocol` impls) runs in the same harness.
    let registry = ProtocolRegistry::with_builtins();
    let protocol = registry.lookup("SS-SPST-E").expect("built-in protocol");
    let mut scenario = Scenario::quick_test();
    scenario.duration_s = 60.0;
    let report = run_protocol(&scenario, protocol.as_ref());
    println!(
        "\nEvent-driven run ({} nodes, {:.0} s, {} m/s max speed):",
        scenario.n_nodes, scenario.duration_s, scenario.max_speed_mps
    );
    println!("  packets generated          : {}", report.generated);
    println!("  packet delivery ratio      : {:.3}", report.pdr);
    println!("  avg end-to-end delay       : {:.2} ms", report.avg_delay_ms);
    println!("  energy per packet delivered: {:.2} mJ", report.energy_per_delivered_mj);
    println!("  control bytes / data byte  : {:.3}", report.control_bytes_per_data_byte);
}
