//! Figures 1–6: stabilize the paper's worked example under all four cost metrics and
//! compare the resulting trees, stabilization round counts and per-packet energy.
//!
//! Run with `cargo run --release --example paper_topology`.

use ssmcast::core::{figure1_topology, run_all_examples, MetricKind, MetricParams};
use ssmcast::manet::NodeId;

fn main() {
    let topo = figure1_topology();
    let params = MetricParams::default();

    println!(
        "Figure 1 — the example topology ({} nodes, {} members):",
        topo.len(),
        topo.member_count()
    );
    for v in topo.nodes() {
        let kind = if v == topo.source() {
            "source"
        } else if topo.is_member(v) {
            "member"
        } else {
            "non-group"
        };
        let neighbours: Vec<String> =
            topo.neighbors(v).iter().map(|(u, d)| format!("{u}({d:.1}m)")).collect();
        println!("  node {v:>2} [{kind:>9}]  neighbours: {}", neighbours.join(", "));
    }

    println!("\nFigures 2, 3, 4, 6 — stabilized trees per metric:");
    println!(
        "{:<12} {:>7} {:>10} {:>14} {:>16}",
        "protocol", "rounds", "max depth", "parent(3)", "energy/pkt (mJ)"
    );
    for result in run_all_examples() {
        let parent3 =
            result.tree.parent(NodeId(3)).map(|p| p.to_string()).unwrap_or_else(|| "-".to_string());
        println!(
            "{:<12} {:>7} {:>10} {:>14} {:>16.3}",
            result.kind.protocol_name(),
            result.rounds,
            result.tree.max_depth(),
            parent3,
            result.per_packet_energy * 1e3
        );
    }

    // Figure 5's point: the discard energy term separates otherwise equal parents.
    let e = ssmcast::core::run_example(MetricKind::EnergyAware, &params);
    let f = ssmcast::core::run_example(MetricKind::Farthest, &params);
    println!(
        "\nDiscard-energy effect (Figure 5): E-tree per-packet energy {:.3} mJ vs F-tree {:.3} mJ",
        e.per_packet_energy * 1e3,
        f.per_packet_energy * 1e3
    );
}
