//! The network-lifetime figure: give every node a finite battery (plus a small
//! idle-listen current and distance-based TX power control) and sweep the capacity,
//! charting how long each protocol keeps its first node alive. Blind flooding burns the
//! fleet fastest; the energy-aware SS-SPST-E tree — short links priced by actual
//! receiver distance, less overhearing — keeps the first node alive longest, exactly
//! the consequence the paper's energy-per-packet curves predict.
//!
//! Run with `cargo run --release --example lifetime_sweep`. `SSMCAST_SCALE` /
//! `SSMCAST_REPS` work as in the other examples (see EXPERIMENTS.md).

use ssmcast::scenario::{figure_to_text, run_figure_with_sink, FigureId, Metric, ProgressSink};

fn main() {
    let scale: f64 =
        std::env::var("SSMCAST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let reps: usize = std::env::var("SSMCAST_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
    let mut progress = ProgressSink::stderr();
    let result = run_figure_with_sink(FigureId::FigLifetime, scale, reps, &mut progress);
    println!("{}", figure_to_text(&result));

    // Companion view: the delivery ratio each capacity sustains — lifetime is only
    // worth having if the surviving network still serves its members.
    let pdr = ssmcast::scenario::sweep::to_series(&result.cells, Metric::Pdr);
    println!("# Packet delivery ratio at each battery capacity");
    for series in &pdr {
        println!("{}", series.to_text());
    }

    // And the terminal population: how many nodes each protocol kept alive.
    println!("# Battery-alive nodes at the end of the run (first repetition per cell)");
    for cell in &result.cells {
        if let Some(lifetime) = cell.reports.first().and_then(|r| r.lifetime.as_ref()) {
            println!(
                "  {:<10} @ {:>5} J: {} alive, first death {}",
                cell.protocol,
                cell.x,
                lifetime.alive_final,
                lifetime
                    .first_death_s
                    .map(|s| format!("at {s:.1} s"))
                    .unwrap_or_else(|| "never".into()),
            );
        }
    }
}
