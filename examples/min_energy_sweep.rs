//! The minimum-energy-baseline figure: sweep the radio duty cycle on a static grid
//! and chart each protocol's delivery ratio. Flooding and SS-SPST-E are schedule-blind
//! — their frames land on sleeping radios and the delivery ratio collapses with the
//! awake fraction. MEM-Tree (a BIP minimum-energy broadcast tree) is just as blind but
//! cheaper per delivery; DCA-Forward runs the same tree *duty-cycle-aware*, batching
//! awake children into one priced broadcast and deferring the rest to their wake
//! windows, so its delivery ratio survives aggressive duty cycling.
//!
//! Run with `cargo run --release --example min_energy_sweep`. `SSMCAST_SCALE` /
//! `SSMCAST_REPS` work as in the other examples (see EXPERIMENTS.md).

use ssmcast::scenario::{figure_to_text, run_figure_with_sink, FigureId, Metric, ProgressSink};

fn main() {
    let scale: f64 =
        std::env::var("SSMCAST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let reps: usize = std::env::var("SSMCAST_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
    let mut progress = ProgressSink::stderr();
    let result = run_figure_with_sink(FigureId::FigMinEnergy, scale, reps, &mut progress);
    println!("{}", figure_to_text(&result));

    // Companion view: what each delivered byte cost. The minimum-energy tree should
    // undercut flooding at every duty cycle; DCA-Forward pays a little extra range
    // margin back for the deliveries the blind protocols simply drop.
    let energy = ssmcast::scenario::sweep::to_series(&result.cells, Metric::EnergyPerByteUj);
    println!("# Energy per delivered byte (uJ) at each awake fraction");
    for series in &energy {
        println!("{}", series.to_text());
    }

    // And the raw traffic: how many data transmissions each protocol spent.
    println!("# Data packets transmitted (first repetition per cell)");
    for cell in &result.cells {
        if let Some(report) = cell.reports.first() {
            println!(
                "  {:<12} @ awake {:>4}: {} data tx, {} delivered",
                cell.protocol, cell.x, report.data_packets_tx, report.delivered,
            );
        }
    }
}
