//! The fault-sweep figure: inject a growing number of seeded state-corruption bursts
//! into the paper's scenario and compare how fast each protocol re-establishes a
//! legitimate multicast tree (mean recovery time per fault episode). The SS-SPST
//! variants self-stabilize within a few beacon intervals; MAODV waits for its next
//! Group Hello; blind flooding never forms a legitimate tree at all (its cells report
//! zero recoveries — see the unrecovered counters in the streamed CSV columns).
//!
//! Run with `cargo run --release --example fault_sweep`. `SSMCAST_SCALE` / `SSMCAST_REPS`
//! work as in the other examples (see EXPERIMENTS.md).

use ssmcast::scenario::{figure_to_text, run_figure_with_sink, FigureId, ProgressSink};

fn main() {
    let scale: f64 =
        std::env::var("SSMCAST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let reps: usize = std::env::var("SSMCAST_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
    let mut progress = ProgressSink::stderr();
    let result = run_figure_with_sink(FigureId::FigFaults, scale, reps, &mut progress);
    println!("{}", figure_to_text(&result));

    // Companion view: the fraction of fault episodes each protocol never recovered
    // from. A self-stabilizing protocol should sit at 0; a structure-free one at 1.
    let unrecovered = ssmcast::scenario::sweep::to_series(
        &result.cells,
        ssmcast::scenario::Metric::UnrecoveredRatio,
    );
    println!("# Unrecovered fault episodes (ratio)");
    for series in &unrecovered {
        println!("{}", series.to_text());
    }
}
