//! Network-lifetime extension: give every node a finite battery and watch how long the
//! multicast service survives under each protocol. Not a figure from the paper, but the
//! natural consequence of its motivation (battery-powered nodes) and a direct use of the
//! public protocol/runtime API: the registry supplies the protocol factory, and the
//! example customises the `SimSetup` before handing it over.
//!
//! Run with `cargo run --release --example energy_budget`.

use ssmcast::dessim::SeedSequence;
use ssmcast::scenario::{build_mobility, build_setup, ProtocolRegistry, Scenario};

/// Run a scenario where each node starts with `capacity_j` joules and report how many
/// data packets were delivered before the network ran out of energy.
fn run_with_budget(registry: &ProtocolRegistry, name: &str, capacity_j: f64) -> (u64, f64) {
    let mut scenario = Scenario::paper_default();
    scenario.duration_s = 120.0;
    scenario.max_speed_mps = 2.0;
    let seeds = SeedSequence::new(scenario.seed);
    let mut setup = build_setup(&scenario, seeds);
    setup.battery_capacity_j = capacity_j;
    let mobility = build_mobility(&scenario, &seeds);
    let protocol = registry.lookup(name).expect("protocol registered");
    let report = protocol.run(&scenario, setup, mobility);
    (report.delivered, report.pdr)
}

fn main() {
    // 2 J per node: enough for a few thousand receptions or a few hundred max-range
    // transmissions, so the protocols' energy discipline decides how much useful work the
    // network completes before dying.
    let capacity_j = 2.0;
    let registry = ProtocolRegistry::with_builtins();
    println!("Per-node battery budget: {capacity_j} J, 120 simulated seconds\n");
    println!("{:<12} {:>20} {:>10}", "protocol", "packets delivered", "PDR");
    for name in ["SS-SPST-E", "SS-SPST", "MAODV", "ODMRP"] {
        let (delivered, pdr) = run_with_budget(&registry, name, capacity_j);
        println!("{:<12} {:>20} {:>10.3}", name, delivered, pdr);
    }
    println!(
        "\nWith a finite energy budget the energy-aware tree keeps the service alive longest —"
    );
    println!("the same effect the paper's Figure 9/16 energy-per-packet curves predict.");
}
