//! Network-lifetime extension: give every node a finite battery and watch how long the
//! multicast service survives under each protocol. Not a figure from the paper, but the
//! natural consequence of its motivation (battery-powered nodes) and a direct use of the
//! public battery/runtime API.
//!
//! Run with `cargo run --release --example energy_budget`.

use ssmcast::core::MetricKind;
use ssmcast::dessim::{SeedSequence, SimDuration};
use ssmcast::manet::NetworkSim;
use ssmcast::scenario::{build_mobility, build_setup, ProtocolKind, Scenario};
use ssmcast_baselines::{MaodvAgent, OdmrpAgent};
use ssmcast_core::{SsSpstAgent, SsSpstConfig};

/// Run a scenario where each node starts with `capacity_j` joules and report how many
/// data packets were delivered before the network ran out of energy.
fn run_with_budget(protocol: ProtocolKind, capacity_j: f64) -> (u64, f64) {
    let mut scenario = Scenario::paper_default();
    scenario.duration_s = 120.0;
    scenario.max_speed_mps = 2.0;
    let seeds = SeedSequence::new(scenario.seed);
    let mut setup = build_setup(&scenario, seeds);
    setup.battery_capacity_j = capacity_j;
    let mobility = build_mobility(&scenario, &seeds);
    let duration = SimDuration::from_secs_f64(scenario.duration_s);
    let report = match protocol {
        ProtocolKind::SsSpst(kind) => {
            let agents =
                (0..scenario.n_nodes).map(|_| SsSpstAgent::new(SsSpstConfig::paper_default(kind))).collect();
            NetworkSim::new(setup, mobility, agents).run(duration)
        }
        ProtocolKind::Odmrp => {
            let agents = (0..scenario.n_nodes).map(|_| OdmrpAgent::with_defaults()).collect();
            NetworkSim::new(setup, mobility, agents).run(duration)
        }
        ProtocolKind::Maodv => {
            let agents = (0..scenario.n_nodes).map(|_| MaodvAgent::with_defaults()).collect();
            NetworkSim::new(setup, mobility, agents).run(duration)
        }
        ProtocolKind::Flooding => unreachable!("not part of this example"),
    };
    (report.delivered, report.pdr)
}

fn main() {
    // 2 J per node: enough for a few thousand receptions or a few hundred max-range
    // transmissions, so the protocols' energy discipline decides how much useful work the
    // network completes before dying.
    let capacity_j = 2.0;
    println!("Per-node battery budget: {capacity_j} J, 120 simulated seconds\n");
    println!("{:<12} {:>20} {:>10}", "protocol", "packets delivered", "PDR");
    for protocol in [
        ProtocolKind::SsSpst(MetricKind::EnergyAware),
        ProtocolKind::SsSpst(MetricKind::Hop),
        ProtocolKind::Maodv,
        ProtocolKind::Odmrp,
    ] {
        let (delivered, pdr) = run_with_budget(protocol, capacity_j);
        println!("{:<12} {:>20} {:>10.3}", protocol.name(), delivered, pdr);
    }
    println!("\nWith a finite energy budget the energy-aware tree keeps the service alive longest —");
    println!("the same effect the paper's Figure 9/16 energy-per-packet curves predict.");
}
