//! Figures 7, 8 and 9: sweep node velocity and compare the four SS-SPST variants on packet
//! delivery ratio, unavailability ratio and energy per delivered packet. Cell-by-cell
//! progress streams to stderr while the sweep runs.
//!
//! Run with `cargo run --release --example velocity_sweep` (set `SSMCAST_SCALE` to a value
//! around 10 for paper-length 1800 s runs; the default keeps the sweep to a few minutes).

use ssmcast::scenario::{figure_to_text, run_figure_with_sink, FigureId, ProgressSink};

fn main() {
    let scale: f64 =
        std::env::var("SSMCAST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let reps: usize = std::env::var("SSMCAST_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
    for id in [FigureId::Fig7, FigureId::Fig8, FigureId::Fig9] {
        let mut progress = ProgressSink::stderr();
        let result = run_figure_with_sink(id, scale, reps, &mut progress);
        println!("{}", figure_to_text(&result));
    }
}
