//! Figures 12–16: SS-SPST and SS-SPST-E against MAODV and ODMRP — group-size scalability,
//! control overhead, delivery ratio under mobility, delay and energy per packet.
//!
//! Run with `cargo run --release --example protocol_comparison`. This is the largest
//! example; lower `SSMCAST_SCALE` / `SSMCAST_REPS` for a faster pass.

use ssmcast::scenario::{figure_to_text, run_figure, write_figure_files, FigureId};
use std::path::Path;

fn main() {
    let scale: f64 = std::env::var("SSMCAST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.4);
    let reps: usize = std::env::var("SSMCAST_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let out_dir = std::env::var("SSMCAST_OUT").unwrap_or_else(|_| "target/figures".to_string());
    for id in [FigureId::Fig12, FigureId::Fig13, FigureId::Fig14, FigureId::Fig15, FigureId::Fig16] {
        let result = run_figure(id, scale, reps);
        println!("{}", figure_to_text(&result));
        if let Err(e) = write_figure_files(&result, Path::new(&out_dir)) {
            eprintln!("could not write CSV/JSON for {}: {e}", result.spec.id.short_name());
        }
    }
    println!("CSV/JSON series written to {out_dir}/");
}
