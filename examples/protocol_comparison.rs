//! Figures 12–16: SS-SPST and SS-SPST-E against MAODV and ODMRP — group-size scalability,
//! control overhead, delivery ratio under mobility, delay and energy per packet.
//!
//! Demonstrates streaming sinks: while each figure runs, per-cell progress goes to stderr
//! and raw repetition rows stream into an incremental CSV (`<figNN>_cells.csv`), so an
//! interrupted run still leaves loadable partial results. The per-figure summary CSV/JSON
//! is written as before once the figure completes.
//!
//! Run with `cargo run --release --example protocol_comparison`. This is the largest
//! example; lower `SSMCAST_SCALE` / `SSMCAST_REPS` for a faster pass.

use ssmcast::scenario::{
    figure_to_text, run_figure_with_sink, write_figure_files, CsvStreamSink, FigureId,
    ProgressSink, TeeSink,
};
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

fn main() {
    let scale: f64 =
        std::env::var("SSMCAST_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.4);
    let reps: usize = std::env::var("SSMCAST_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let out_dir = std::env::var("SSMCAST_OUT").unwrap_or_else(|_| "target/figures".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    for id in [FigureId::Fig12, FigureId::Fig13, FigureId::Fig14, FigureId::Fig15, FigureId::Fig16]
    {
        let mut progress = ProgressSink::stderr();
        let cell_csv_path = Path::new(&out_dir).join(format!("{}_cells.csv", id.short_name()));
        let cell_csv = File::create(&cell_csv_path).expect("create streaming CSV");
        let mut csv = CsvStreamSink::new(BufWriter::new(cell_csv));
        let result = {
            let mut tee = TeeSink::new(vec![&mut progress, &mut csv]);
            run_figure_with_sink(id, scale, reps, &mut tee)
        };
        println!("{}", figure_to_text(&result));
        if let Err(e) = write_figure_files(&result, Path::new(&out_dir)) {
            eprintln!("could not write CSV/JSON for {}: {e}", result.spec.id.short_name());
        }
    }
    println!("summary CSV/JSON series and streamed per-cell CSVs written to {out_dir}/");
}
