//! # ssmcast — energy-aware self-stabilizing multicast for MANETs
//!
//! A full reproduction of *"Energy-Aware Self-Stabilization in Mobile Ad Hoc Networks: A
//! Multicasting Case Study"* (Mukherjee, Sridharan, Gupta — IPDPS/IPPS 2007) as a Rust
//! workspace:
//!
//! * [`dessim`] — the discrete-event simulation engine (the role ns-2 plays in the paper).
//! * [`manet`] — the MANET substrate: random-waypoint mobility, power-controlled radio,
//!   first-order energy model, broadcast channel with collisions, per-node batteries.
//! * [`core`] — the paper's contribution: the SS-SPST protocol family (SS-SPST, -T, -F and
//!   the energy-aware SS-SPST-E) as both a synchronous round model and an event-driven
//!   protocol agent.
//! * [`baselines`] — MAODV and ODMRP, the protocols the paper compares against.
//! * [`metrics`] — summary statistics for the experiment harness.
//! * [`scenario`] — the Section-6 simulation model and the Experiment API: a name-keyed
//!   protocol registry, pluggable mobility models (random waypoint, Gauss–Markov, static
//!   grid), the `Experiment` builder with streaming run sinks, and one preset per
//!   evaluation figure (Figures 7–16). See `EXPERIMENTS.md` for how to regenerate every
//!   figure.
//!
//! This umbrella crate re-exports every sub-crate so downstream users can depend on a
//! single `ssmcast` crate; the runnable binaries in `examples/` are the quickest way in.
//!
//! ```
//! use ssmcast::core::{figure1_topology, MetricKind, MetricParams, SyncModel};
//!
//! // Stabilize the paper's Figure-1 example under the energy-aware metric.
//! let mut model = SyncModel::new(figure1_topology(), MetricKind::EnergyAware, MetricParams::default());
//! let rounds = model.run_to_stabilization(100).unwrap();
//! assert!(model.tree().is_spanning());
//! assert!(rounds >= 2);
//! ```

#![warn(missing_docs)]

pub use ssmcast_baselines as baselines;
pub use ssmcast_core as core;
pub use ssmcast_dessim as dessim;
pub use ssmcast_manet as manet;
pub use ssmcast_metrics as metrics;
pub use ssmcast_scenario as scenario;
